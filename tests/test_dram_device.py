"""Tests for the resource-timeline DRAM device, anchored to Figure 3."""

import pytest

from repro.dram.device import BACKGROUND_BACKLOG_OPS, DramDevice, PriorityTimeline
from repro.dram.mapping import RowLocation
from repro.dram.timings import OFFCHIP_DDR3, STACKED_DRAM


@pytest.fixture
def memory():
    return DramDevice(OFFCHIP_DDR3)


@pytest.fixture
def stacked():
    return DramDevice(STACKED_DRAM)


LOC = RowLocation(channel=0, bank=0, row=0)
OTHER_ROW = RowLocation(channel=0, bank=0, row=7)
OTHER_BANK = RowLocation(channel=0, bank=1, row=0)
OTHER_CHANNEL = RowLocation(channel=1, bank=0, row=0)


class TestIsolatedLatencies:
    """Isolated accesses must reproduce the paper's Figure 3 numbers."""

    def test_memory_row_miss_is_88_cycles(self, memory):
        result = memory.access(0.0, LOC)
        assert result.done == 88  # ACT 36 + CAS 36 + bus 16 (type Y)

    def test_memory_row_hit_is_52_cycles(self, memory):
        memory.access(0.0, LOC)
        result = memory.access(1000.0, LOC)
        assert result.done - 1000.0 == 52  # CAS 36 + bus 16 (type X)

    def test_stacked_row_miss_is_40_cycles(self, stacked):
        assert stacked.access(0.0, LOC).done == 40  # 18 + 18 + 4

    def test_stacked_row_hit_is_22_cycles(self, stacked):
        stacked.access(0.0, LOC)
        result = stacked.access(500.0, LOC)
        assert result.done - 500.0 == 22

    def test_tad_burst_adds_one_cycle(self, stacked):
        # An 80 B TAD costs one extra bus beat over a 64 B line.
        line = stacked.access(0.0, LOC, burst_cycles=4).done
        stacked.reset()
        tad = stacked.access(0.0, LOC, burst_cycles=5).done
        assert tad - line == 1


class TestRowBuffer:
    def test_row_hit_flag(self, stacked):
        assert not stacked.access(0.0, LOC).row_hit
        assert stacked.access(100.0, LOC).row_hit

    def test_row_conflict_closes_row(self, stacked):
        stacked.access(0.0, LOC)
        assert not stacked.access(100.0, OTHER_ROW).row_hit
        assert not stacked.access(200.0, LOC).row_hit

    def test_open_row_tracking(self, stacked):
        stacked.access(0.0, LOC)
        assert stacked.open_row_at(LOC) == 0
        assert stacked.would_row_hit(LOC)
        assert not stacked.would_row_hit(OTHER_ROW)

    def test_row_hit_rate_stat(self, stacked):
        stacked.access(0.0, LOC)
        stacked.access(100.0, LOC)
        assert stacked.row_hit_rate == pytest.approx(0.5)


class TestContention:
    def test_same_bank_queues(self, stacked):
        first = stacked.access(0.0, LOC)
        second = stacked.access(0.0, LOC)
        assert second.start >= first.done
        assert second.queue_delay > 0

    def test_other_bank_does_not_queue(self, stacked):
        stacked.access(0.0, LOC)
        result = stacked.access(0.0, OTHER_BANK)
        assert result.queue_delay == 0

    def test_other_channel_independent(self, stacked):
        stacked.access(0.0, LOC)
        result = stacked.access(0.0, OTHER_CHANNEL)
        assert result.done == 40

    def test_bus_shared_within_channel(self, stacked):
        # Two banks on one channel contend for the data bus.
        a = stacked.access(0.0, LOC)
        b = stacked.access(0.0, OTHER_BANK)
        assert b.done >= a.done  # second burst serialized on the bus

    def test_timeline_monotone(self, stacked):
        last = 0.0
        for i in range(20):
            result = stacked.access(float(i), LOC)
            assert result.done >= last
            last = result.done


class TestPriority:
    def test_demand_barely_blocked_by_one_background_op(self, stacked):
        stacked.access(0.0, LOC, background=True)
        demand = stacked.access(0.0, LOC)
        # Blocked by at most one burst tail (t_cas + line_burst = 22).
        assert demand.queue_delay <= 22

    def test_demand_blocked_fully_by_demand(self, stacked):
        first = stacked.access(0.0, LOC)
        second = stacked.access(0.0, LOC)
        assert second.start >= first.done

    def test_background_queues_behind_background(self, stacked):
        a = stacked.access(0.0, LOC, background=True)
        b = stacked.access(0.0, LOC, background=True)
        assert b.start >= a.done - 5  # service ordering preserved

    def test_heavy_backlog_throttles_demand(self, stacked):
        # Pile up far more background work than the write-buffer watermark:
        # demand must eventually wait for the drain.
        for _ in range(40):
            stacked.access(0.0, LOC, background=True)
        demand = stacked.access(0.0, LOC)
        assert demand.queue_delay > 100

    def test_background_counted(self, stacked):
        stacked.access(0.0, LOC, background=True)
        stacked.access(0.0, LOC)
        assert stacked.stats.counter("background_accesses").value == 1
        assert stacked.stats.counter("accesses").value == 2


class TestPriorityTimeline:
    def test_background_serial(self):
        t = PriorityTimeline()
        assert t.reserve(0.0, 10, True, 5, 100) == 0.0
        assert t.reserve(0.0, 10, True, 5, 100) == 10.0

    def test_demand_skips_small_backlog(self):
        t = PriorityTimeline()
        t.reserve(0.0, 10, True, 5, 100)
        start = t.reserve(0.0, 10, False, 5, 100)
        assert start == 5.0  # one block_cap, not the full 10

    def test_demand_service_pushes_background_back(self):
        t = PriorityTimeline()
        t.reserve(0.0, 10, True, 5, 100)
        t.reserve(0.0, 10, False, 5, 100)
        # Total occupancy conserved: 10 background + 10 demand.
        assert t.all_free >= 20.0

    def test_backlog_accessor(self):
        t = PriorityTimeline()
        t.reserve(0.0, 30, True, 5, 100)
        assert t.backlog_at(10.0) == pytest.approx(20.0)
        assert t.backlog_at(50.0) == 0.0


class TestPriorityTimelineBoundaries:
    """Pin the reference ``reserve`` on the exact boundaries the
    differential fuzzer hugs — so the reference itself is locked, not
    just the inlined mirror."""

    def test_backlog_exactly_block_cap(self):
        t = PriorityTimeline()
        t.reserve(0.0, 5.0, True, 5.0, 100.0)
        # Backlog == block_cap: blocked by the whole backlog, nothing
        # capped away, no drain.
        assert t.reserve(0.0, 10.0, False, 5.0, 100.0) == 5.0

    def test_backlog_one_past_block_cap(self):
        t = PriorityTimeline()
        t.reserve(0.0, 6.0, True, 5.0, 100.0)
        # One cycle past the cap: blocking saturates at block_cap.
        assert t.reserve(0.0, 10.0, False, 5.0, 100.0) == 5.0

    def test_backlog_exactly_watermark(self):
        t = PriorityTimeline()
        t.reserve(0.0, 100.0, True, 5.0, 100.0)
        # At the watermark the drain term is still zero.
        assert t.reserve(0.0, 10.0, False, 5.0, 100.0) == 5.0

    def test_backlog_one_past_watermark(self):
        t = PriorityTimeline()
        t.reserve(0.0, 101.0, True, 5.0, 100.0)
        # block_cap blocking plus exactly the 1-cycle excess drain.
        assert t.reserve(0.0, 10.0, False, 5.0, 100.0) == 6.0

    def test_demand_conserves_total_occupancy_at_boundaries(self):
        for backlog in (5.0, 6.0, 100.0, 101.0):
            t = PriorityTimeline()
            t.reserve(0.0, backlog, True, 5.0, 100.0)
            start = t.reserve(0.0, 10.0, False, 5.0, 100.0)
            assert t.demand_free == start + 10.0
            assert t.all_free == backlog + 10.0


class TestAccessLine:
    def test_uses_mapping(self, memory):
        r1 = memory.access_line(0.0, 0)
        r2 = memory.access_line(r1.done, 1)
        assert r2.row_hit  # adjacent lines share a row

    def test_write_counted(self, memory):
        memory.access_line(0.0, 0, is_write=True)
        assert memory.stats.counter("write_accesses").value == 1


def _assert_exact_decomposition(result, issued_at):
    """The five stage fields must account for every cycle of the access."""
    total = (
        result.queue_delay
        + result.act_cycles
        + result.cas_cycles
        + result.bus_queue_delay
        + result.burst_cycles
    )
    assert total == pytest.approx(result.done - issued_at)


class TestDecomposition:
    """AccessResult's stage fields decompose ``done - now`` exactly."""

    def test_isolated_row_miss(self, memory):
        result = memory.access(0.0, LOC)
        assert result.act_cycles == OFFCHIP_DDR3.t_act
        assert result.cas_cycles == OFFCHIP_DDR3.t_cas
        assert result.burst_cycles == OFFCHIP_DDR3.line_burst
        assert result.queue_delay == 0
        assert result.bus_queue_delay == 0
        _assert_exact_decomposition(result, 0.0)

    def test_row_hit_has_no_act(self, memory):
        memory.access(0.0, LOC)
        result = memory.access(1000.0, LOC)
        assert result.act_cycles == 0
        _assert_exact_decomposition(result, 1000.0)

    def test_row_conflict_includes_precharge(self, stacked):
        stacked.access(0.0, LOC)
        result = stacked.access(1000.0, OTHER_ROW)
        assert result.act_cycles == STACKED_DRAM.t_rp + STACKED_DRAM.t_act
        _assert_exact_decomposition(result, 1000.0)

    def test_bus_wait_attributed_not_dropped(self, stacked):
        # Two banks on one channel: the second access's data is ready while
        # the first still owns the bus, so it waits — and the wait must show
        # up in bus_queue_delay rather than vanish.
        stacked.access(0.0, LOC)
        second = stacked.access(0.0, OTHER_BANK)
        assert second.bus_queue_delay > 0
        _assert_exact_decomposition(second, 0.0)

    def test_bus_queue_stats_recorded(self, stacked):
        stacked.access(0.0, LOC)
        second = stacked.access(0.0, OTHER_BANK)
        acc = stacked.stats.accumulator("bus_queue_delay")
        assert acc.total == pytest.approx(second.bus_queue_delay)
        demand = stacked.stats.accumulator("demand_bus_queue_delay")
        assert demand.total == pytest.approx(second.bus_queue_delay)

    def test_decomposes_under_sustained_contention(self, stacked):
        for i in range(25):
            issued = float(i)
            result = stacked.access(issued, LOC)
            _assert_exact_decomposition(result, issued)

    def test_breakdown_device_stages(self, stacked):
        result = stacked.access(0.0, LOC)
        breakdown = result.breakdown()
        assert breakdown.total == pytest.approx(result.done)
        assert breakdown.get("act") == result.act_cycles
        assert breakdown.get("cas") == result.cas_cycles
        assert breakdown.get("burst") == result.burst_cycles


class TestClosedPagePolicy:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            DramDevice(STACKED_DRAM, page_policy="adaptive")

    def test_row_closed_after_access(self):
        device = DramDevice(STACKED_DRAM, page_policy="closed")
        device.access(0.0, LOC)
        assert device.open_row_at(LOC) is None

    def test_every_access_pays_activation(self):
        device = DramDevice(STACKED_DRAM, page_policy="closed")
        device.access(0.0, LOC)
        second = device.access(1000.0, LOC)
        assert not second.row_hit
        assert second.act_cycles == STACKED_DRAM.t_act
        assert second.done - 1000.0 == 40  # ACT + CAS + burst, never 22

    def test_no_conflict_precharge_penalty(self):
        # The auto-precharge already closed the row: switching rows costs
        # t_act, not the open-policy conflict price t_rp + t_act.
        device = DramDevice(STACKED_DRAM, page_policy="closed")
        device.access(0.0, LOC)
        result = device.access(1000.0, OTHER_ROW)
        assert result.act_cycles == STACKED_DRAM.t_act


class TestWriteDrainWatermark:
    def test_backlog_below_watermark_blocks_one_burst_only(self, stacked):
        block_cap = STACKED_DRAM.t_cas + STACKED_DRAM.line_burst
        watermark = BACKGROUND_BACKLOG_OPS * block_cap
        for _ in range(BACKGROUND_BACKLOG_OPS - 1):
            stacked.access(0.0, LOC, background=True)
        backlog = stacked.bank_backlog(LOC, 0.0)
        assert backlog <= watermark
        demand = stacked.access(0.0, LOC)
        assert demand.queue_delay == pytest.approx(block_cap)

    def test_backlog_beyond_watermark_forces_drain(self, stacked):
        block_cap = STACKED_DRAM.t_cas + STACKED_DRAM.line_burst
        watermark = BACKGROUND_BACKLOG_OPS * block_cap
        for _ in range(5 * BACKGROUND_BACKLOG_OPS):
            stacked.access(0.0, LOC, background=True)
        backlog = stacked.bank_backlog(LOC, 0.0)
        assert backlog > watermark
        demand = stacked.access(0.0, LOC)
        # One unpreemptable burst plus the excess beyond the write buffer.
        assert demand.queue_delay == pytest.approx(
            block_cap + (backlog - watermark)
        )
        _assert_exact_decomposition(demand, 0.0)


class TestBusWatermark:
    """Locks the adjudicated bus drain threshold: ``BACKGROUND_BACKLOG_OPS``
    ops sized in *bus* service units (``line_burst`` cycles each), not the
    bank-sized watermark the bus path historically inherited."""

    def test_bus_watermark_is_sized_in_bus_service_units(self, stacked):
        assert stacked._bus_watermark() == (
            BACKGROUND_BACKLOG_OPS * STACKED_DRAM.line_burst
        )
        assert stacked._bus_block_cap() == STACKED_DRAM.line_burst
        # And it is genuinely distinct from the bank watermark.
        assert stacked._bus_watermark() != stacked._watermark()

    def test_bus_backlog_at_watermark_blocks_one_burst_only(self, stacked):
        bus_watermark = BACKGROUND_BACKLOG_OPS * STACKED_DRAM.line_burst
        # Park exactly watermark-many bus cycles on channel 0 via an
        # oversized background burst on the other bank.
        stacked.access(0.0, OTHER_BANK, bus_watermark, background=True)
        demand = stacked.access(0.0, LOC)
        # data_ready lands while bus backlog == watermark: no drain, just
        # the one unpreemptable burst (the bus block cap).
        assert demand.bus_queue_delay == pytest.approx(
            STACKED_DRAM.line_burst
        )

    def test_bus_backlog_past_watermark_forces_drain(self, stacked):
        bus_watermark = BACKGROUND_BACKLOG_OPS * STACKED_DRAM.line_burst
        excess = 8.0
        stacked.access(
            0.0, OTHER_BANK, bus_watermark + excess, background=True
        )
        demand = stacked.access(0.0, LOC)
        assert demand.bus_queue_delay == pytest.approx(
            STACKED_DRAM.line_burst + excess
        )
        _assert_exact_decomposition(demand, 0.0)

    def test_old_bank_sized_threshold_would_never_drain_here(self, stacked):
        # Regression guard for the adjudicated bug: a backlog well past the
        # bus watermark but far below the bank-sized one (176 cycles for
        # stacked) must already be draining.
        bank_watermark = BACKGROUND_BACKLOG_OPS * (
            STACKED_DRAM.t_cas + STACKED_DRAM.line_burst
        )
        backlog = 48.0
        assert backlog < bank_watermark
        stacked.access(0.0, OTHER_BANK, backlog, background=True)
        demand = stacked.access(0.0, LOC)
        assert demand.bus_queue_delay > STACKED_DRAM.line_burst


class TestUtilities:
    def test_bus_utilization(self, stacked):
        stacked.access(0.0, LOC)  # 4 bus cycles over 4 channels
        assert stacked.bus_utilization(100.0) == pytest.approx(0.01)

    def test_bus_utilization_zero_elapsed(self, stacked):
        assert stacked.bus_utilization(0.0) == 0.0

    def test_reset(self, stacked):
        stacked.access(0.0, LOC)
        stacked.reset()
        assert stacked.stats.counter("accesses").value == 0
        assert stacked.open_row_at(LOC) is None
        assert stacked.access(0.0, LOC).done == 40


class TestResetStaleness:
    """``reset()`` must not resurrect pre-reset activity.

    The device batches its integer counters as plain attributes and only
    flushes them into the :class:`StatGroup` when ``stats`` is read.
    A reset that cleared the group but left the pending deltas behind
    would leak the pre-reset counts into the first post-reset ``stats``
    read — these tests pin the fix.
    """

    def test_pending_counter_deltas_cleared(self, stacked):
        # Accumulate activity WITHOUT reading .stats (deltas stay batched).
        for _ in range(4):
            stacked.access(0.0, LOC)
        stacked.reset()
        stacked.access(0.0, LOC)
        # Exactly the one post-reset access — not 5.
        assert stacked.stats.counter("accesses").value == 1
        assert stacked.stats.counter("read_accesses").value == 1

    def test_pending_deltas_cleared_even_without_new_accesses(self, stacked):
        stacked.access(0.0, LOC, is_write=True, background=True)
        stacked.reset()
        stats = stacked.stats
        assert stats.counter("accesses").value == 0
        assert stats.counter("write_accesses").value == 0
        assert stats.counter("background_accesses").value == 0
        assert stats.counter("bus_cycles").value == 0

    def test_accumulators_cleared(self, stacked):
        for _ in range(3):
            stacked.access(0.0, LOC)  # same bank: queue_wait samples
        stacked.reset()
        acc = stacked.stats.accumulators.get("queue_wait")
        assert acc is None or acc.count == 0

    def test_post_reset_sequence_matches_fresh_device(self, stacked):
        for _ in range(4):
            stacked.access(0.0, LOC)
        stacked.reset()
        fresh = DramDevice(STACKED_DRAM)
        for device in (stacked, fresh):
            device.access(0.0, LOC)
            device.access(0.0, OTHER_ROW)
        assert stacked.stats.as_dict() == fresh.stats.as_dict()

    def test_registered_histograms_reset_with_group(self, stacked):
        # StatGroup-registered histograms follow the group's reset: a
        # histogram that kept its buckets across reset would double-count
        # the warmup phase after System.run() resets the devices.
        hist = stacked.stats.histogram("probe_latency", [10, 100])
        hist.sample(50.0)
        assert sum(hist.counts) == 1
        stacked.reset()
        assert sum(hist.counts) == 0
        # Re-registering under the same name returns the same (reset) object.
        assert stacked.stats.histogram("probe_latency", [10, 100]) is hist
