"""Tests for the resource-timeline DRAM device, anchored to Figure 3."""

import pytest

from repro.dram.device import DramDevice, PriorityTimeline
from repro.dram.mapping import RowLocation
from repro.dram.timings import OFFCHIP_DDR3, STACKED_DRAM


@pytest.fixture
def memory():
    return DramDevice(OFFCHIP_DDR3)


@pytest.fixture
def stacked():
    return DramDevice(STACKED_DRAM)


LOC = RowLocation(channel=0, bank=0, row=0)
OTHER_ROW = RowLocation(channel=0, bank=0, row=7)
OTHER_BANK = RowLocation(channel=0, bank=1, row=0)
OTHER_CHANNEL = RowLocation(channel=1, bank=0, row=0)


class TestIsolatedLatencies:
    """Isolated accesses must reproduce the paper's Figure 3 numbers."""

    def test_memory_row_miss_is_88_cycles(self, memory):
        result = memory.access(0.0, LOC)
        assert result.done == 88  # ACT 36 + CAS 36 + bus 16 (type Y)

    def test_memory_row_hit_is_52_cycles(self, memory):
        memory.access(0.0, LOC)
        result = memory.access(1000.0, LOC)
        assert result.done - 1000.0 == 52  # CAS 36 + bus 16 (type X)

    def test_stacked_row_miss_is_40_cycles(self, stacked):
        assert stacked.access(0.0, LOC).done == 40  # 18 + 18 + 4

    def test_stacked_row_hit_is_22_cycles(self, stacked):
        stacked.access(0.0, LOC)
        result = stacked.access(500.0, LOC)
        assert result.done - 500.0 == 22

    def test_tad_burst_adds_one_cycle(self, stacked):
        # An 80 B TAD costs one extra bus beat over a 64 B line.
        line = stacked.access(0.0, LOC, burst_cycles=4).done
        stacked.reset()
        tad = stacked.access(0.0, LOC, burst_cycles=5).done
        assert tad - line == 1


class TestRowBuffer:
    def test_row_hit_flag(self, stacked):
        assert not stacked.access(0.0, LOC).row_hit
        assert stacked.access(100.0, LOC).row_hit

    def test_row_conflict_closes_row(self, stacked):
        stacked.access(0.0, LOC)
        assert not stacked.access(100.0, OTHER_ROW).row_hit
        assert not stacked.access(200.0, LOC).row_hit

    def test_open_row_tracking(self, stacked):
        stacked.access(0.0, LOC)
        assert stacked.open_row_at(LOC) == 0
        assert stacked.would_row_hit(LOC)
        assert not stacked.would_row_hit(OTHER_ROW)

    def test_row_hit_rate_stat(self, stacked):
        stacked.access(0.0, LOC)
        stacked.access(100.0, LOC)
        assert stacked.row_hit_rate == pytest.approx(0.5)


class TestContention:
    def test_same_bank_queues(self, stacked):
        first = stacked.access(0.0, LOC)
        second = stacked.access(0.0, LOC)
        assert second.start >= first.done
        assert second.queue_delay > 0

    def test_other_bank_does_not_queue(self, stacked):
        stacked.access(0.0, LOC)
        result = stacked.access(0.0, OTHER_BANK)
        assert result.queue_delay == 0

    def test_other_channel_independent(self, stacked):
        stacked.access(0.0, LOC)
        result = stacked.access(0.0, OTHER_CHANNEL)
        assert result.done == 40

    def test_bus_shared_within_channel(self, stacked):
        # Two banks on one channel contend for the data bus.
        a = stacked.access(0.0, LOC)
        b = stacked.access(0.0, OTHER_BANK)
        assert b.done >= a.done  # second burst serialized on the bus

    def test_timeline_monotone(self, stacked):
        last = 0.0
        for i in range(20):
            result = stacked.access(float(i), LOC)
            assert result.done >= last
            last = result.done


class TestPriority:
    def test_demand_barely_blocked_by_one_background_op(self, stacked):
        stacked.access(0.0, LOC, background=True)
        demand = stacked.access(0.0, LOC)
        # Blocked by at most one burst tail (t_cas + line_burst = 22).
        assert demand.queue_delay <= 22

    def test_demand_blocked_fully_by_demand(self, stacked):
        first = stacked.access(0.0, LOC)
        second = stacked.access(0.0, LOC)
        assert second.start >= first.done

    def test_background_queues_behind_background(self, stacked):
        a = stacked.access(0.0, LOC, background=True)
        b = stacked.access(0.0, LOC, background=True)
        assert b.start >= a.done - 5  # service ordering preserved

    def test_heavy_backlog_throttles_demand(self, stacked):
        # Pile up far more background work than the write-buffer watermark:
        # demand must eventually wait for the drain.
        for _ in range(40):
            stacked.access(0.0, LOC, background=True)
        demand = stacked.access(0.0, LOC)
        assert demand.queue_delay > 100

    def test_background_counted(self, stacked):
        stacked.access(0.0, LOC, background=True)
        stacked.access(0.0, LOC)
        assert stacked.stats.counter("background_accesses").value == 1
        assert stacked.stats.counter("accesses").value == 2


class TestPriorityTimeline:
    def test_background_serial(self):
        t = PriorityTimeline()
        assert t.reserve(0.0, 10, True, 5, 100) == 0.0
        assert t.reserve(0.0, 10, True, 5, 100) == 10.0

    def test_demand_skips_small_backlog(self):
        t = PriorityTimeline()
        t.reserve(0.0, 10, True, 5, 100)
        start = t.reserve(0.0, 10, False, 5, 100)
        assert start == 5.0  # one block_cap, not the full 10

    def test_demand_service_pushes_background_back(self):
        t = PriorityTimeline()
        t.reserve(0.0, 10, True, 5, 100)
        t.reserve(0.0, 10, False, 5, 100)
        # Total occupancy conserved: 10 background + 10 demand.
        assert t.all_free >= 20.0

    def test_backlog_accessor(self):
        t = PriorityTimeline()
        t.reserve(0.0, 30, True, 5, 100)
        assert t.backlog_at(10.0) == pytest.approx(20.0)
        assert t.backlog_at(50.0) == 0.0


class TestAccessLine:
    def test_uses_mapping(self, memory):
        r1 = memory.access_line(0.0, 0)
        r2 = memory.access_line(r1.done, 1)
        assert r2.row_hit  # adjacent lines share a row

    def test_write_counted(self, memory):
        memory.access_line(0.0, 0, is_write=True)
        assert memory.stats.counter("write_accesses").value == 1


class TestUtilities:
    def test_bus_utilization(self, stacked):
        stacked.access(0.0, LOC)  # 4 bus cycles over 4 channels
        assert stacked.bus_utilization(100.0) == pytest.approx(0.01)

    def test_bus_utilization_zero_elapsed(self, stacked):
        assert stacked.bus_utilization(0.0) == 0.0

    def test_reset(self, stacked):
        stacked.access(0.0, LOC)
        stacked.reset()
        assert stacked.stats.counter("accesses").value == 0
        assert stacked.open_row_at(LOC) is None
        assert stacked.access(0.0, LOC).done == 40
