"""Property-based tests for the DRAM device timing model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.device import DramDevice
from repro.dram.mapping import RowLocation
from repro.dram.timings import STACKED_DRAM


accesses = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=10_000),  # arrival offset
        st.integers(0, 3),   # channel
        st.integers(0, 7),   # bank
        st.integers(0, 63),  # row
        st.integers(1, 16),  # burst
        st.booleans(),       # background
    ),
    min_size=1,
    max_size=120,
)


class TestDeviceProperties:
    @given(accesses=accesses)
    @settings(max_examples=60, deadline=None)
    def test_result_ordering_invariants(self, accesses):
        """start <= data_ready <= done and queue_delay >= 0, always."""
        device = DramDevice(STACKED_DRAM)
        now = 0.0
        for offset, ch, bank, row, burst, background in accesses:
            now += offset
            r = device.access(
                now, RowLocation(ch, bank, row), burst, background=background
            )
            assert r.start >= now
            assert r.data_ready >= r.start + STACKED_DRAM.t_cas - 1e-9
            assert r.done >= r.data_ready + burst - 1e-9
            assert r.queue_delay >= 0

    @given(accesses=accesses)
    @settings(max_examples=60, deadline=None)
    def test_latency_bounded_below_by_raw(self, accesses):
        device = DramDevice(STACKED_DRAM)
        now = 0.0
        for offset, ch, bank, row, burst, background in accesses:
            now += offset
            r = device.access(
                now, RowLocation(ch, bank, row), burst, background=background
            )
            raw = STACKED_DRAM.t_cas + burst
            # Tolerance: with a fractional `now`, start + t_cas + burst
            # can land one ULP short of `now + raw` (e.g. now ~990.56,
            # done - now = 33.999999999999886 vs raw = 34).
            assert r.done - now >= raw - 1e-9

    @given(accesses=accesses)
    @settings(max_examples=60, deadline=None)
    def test_row_hit_iff_row_open(self, accesses):
        device = DramDevice(STACKED_DRAM)
        now = 0.0
        for offset, ch, bank, row, burst, background in accesses:
            now += offset
            loc = RowLocation(ch, bank, row)
            expected = device.open_row_at(loc) == row
            r = device.access(now, loc, burst, background=background)
            assert r.row_hit == expected

    @given(accesses=accesses)
    @settings(max_examples=40, deadline=None)
    def test_stats_count_everything(self, accesses):
        device = DramDevice(STACKED_DRAM)
        now = 0.0
        for offset, ch, bank, row, burst, background in accesses:
            now += offset
            device.access(now, RowLocation(ch, bank, row), burst, background=background)
        assert device.stats.counter("accesses").value == len(accesses)
        assert 0.0 <= device.row_hit_rate <= 1.0

    @given(
        arrivals=st.lists(
            st.floats(min_value=0, max_value=50), min_size=2, max_size=60
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_same_bank_demand_fifo(self, arrivals):
        """Demand accesses to one bank never overlap service windows."""
        device = DramDevice(STACKED_DRAM)
        loc = RowLocation(0, 0, 0)
        now = 0.0
        last_done = 0.0
        for offset in arrivals:
            now += offset
            r = device.access(now, loc, 4)
            assert r.start >= last_done - 1e-9 or r.start >= now
            last_done = r.done
