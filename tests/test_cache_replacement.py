"""Tests for replacement policies (LRU, Random, NRU, DIP)."""

import pytest

from repro.cache.replacement import (
    DIPPolicy,
    LRUPolicy,
    NRUPolicy,
    RandomPolicy,
    make_policy,
)


class TestLRU:
    def test_initial_victim_is_last_way(self):
        p = LRUPolicy()
        state = p.make_state(4)
        assert p.victim_way(state, 0) == 3

    def test_hit_moves_to_mru(self):
        p = LRUPolicy()
        state = p.make_state(4)
        p.on_hit(state, 3, 0)
        assert p.victim_way(state, 0) == 2

    def test_insert_moves_to_mru(self):
        p = LRUPolicy()
        state = p.make_state(2)
        p.on_insert(state, 1, 0)
        assert p.victim_way(state, 0) == 0

    def test_full_recency_sequence(self):
        p = LRUPolicy()
        state = p.make_state(3)
        for way in (0, 1, 2):
            p.on_hit(state, way, 0)
        # Access order 0,1,2 -> LRU is 0.
        assert p.victim_way(state, 0) == 0

    def test_requires_update_traffic(self):
        assert LRUPolicy().requires_update_traffic


class TestRandom:
    def test_victim_in_range(self):
        p = RandomPolicy(seed=42)
        state = p.make_state(8)
        for _ in range(100):
            assert 0 <= p.victim_way(state, 0) < 8

    def test_covers_all_ways(self):
        p = RandomPolicy(seed=7)
        state = p.make_state(4)
        victims = {p.victim_way(state, 0) for _ in range(200)}
        assert victims == {0, 1, 2, 3}

    def test_deterministic_with_seed(self):
        a = [RandomPolicy(seed=3).victim_way(8, 0) for _ in range(5)]
        b = [RandomPolicy(seed=3).victim_way(8, 0) for _ in range(5)]
        assert a == b

    def test_no_update_traffic(self):
        assert not RandomPolicy().requires_update_traffic

    def test_hooks_are_noops(self):
        p = RandomPolicy()
        state = p.make_state(4)
        p.on_hit(state, 0, 0)
        p.on_insert(state, 1, 0)
        assert state == 4


class TestNRU:
    def test_victim_is_first_unreferenced(self):
        p = NRUPolicy()
        state = p.make_state(3)
        p.on_hit(state, 0, 0)
        assert p.victim_way(state, 0) == 1

    def test_saturation_clears_bits(self):
        p = NRUPolicy()
        state = p.make_state(2)
        p.on_hit(state, 0, 0)
        p.on_hit(state, 1, 0)  # saturates; clears others, keeps way 1
        assert state == [False, True]
        assert p.victim_way(state, 0) == 0

    def test_all_referenced_fallback(self):
        p = NRUPolicy()
        assert p.victim_way([True, True], 0) == 0


class TestDIP:
    def test_leader_sets_disjoint(self):
        p = DIPPolicy(dueling_period=32)
        assert p._is_lru_leader(0)
        assert p._is_bip_leader(1)
        assert not p._is_lru_leader(5)
        assert not p._is_bip_leader(5)

    def test_psel_training(self):
        p = DIPPolicy()
        start = p.psel
        p.on_miss(0)  # LRU-leader miss increments
        assert p.psel == start + 1
        p.on_miss(1)  # BIP-leader miss decrements
        assert p.psel == start

    def test_psel_saturates(self):
        p = DIPPolicy(psel_bits=4)
        for _ in range(100):
            p.on_miss(0)
        assert p.psel == 15
        for _ in range(100):
            p.on_miss(1)
        assert p.psel == 0

    def test_followers_use_lru_when_psel_low(self):
        p = DIPPolicy()
        p.psel = 0
        assert p._use_lru_insertion(5)

    def test_followers_use_bip_when_psel_high(self):
        p = DIPPolicy()
        p.psel = p.psel_max
        assert not p._use_lru_insertion(5)

    def test_lru_leader_always_mru_inserts(self):
        p = DIPPolicy()
        p.psel = p.psel_max  # even with PSEL against LRU
        state = p.make_state(4)
        p.on_insert(state, 3, 0)  # set 0 is an LRU leader
        assert state[0] == 3

    def test_bip_leader_mostly_lru_inserts(self):
        p = DIPPolicy(seed=11)
        lru_position_inserts = 0
        for _ in range(200):
            state = p.make_state(4)
            p.on_insert(state, 0, 1)  # set 1 is a BIP leader
            if state[-1] == 0:
                lru_position_inserts += 1
        # BIP inserts at LRU except ~1/32 of the time.
        assert lru_position_inserts > 150

    def test_hit_promotes(self):
        p = DIPPolicy()
        state = p.make_state(4)
        p.on_hit(state, 2, 7)
        assert state[0] == 2


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [("lru", LRUPolicy), ("random", RandomPolicy), ("nru", NRUPolicy), ("dip", DIPPolicy)],
    )
    def test_known_policies(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_case_insensitive(self):
        assert isinstance(make_policy("LRU"), LRUPolicy)

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            make_policy("plru")

    def test_explicit_seed_zero_is_honored(self):
        # ``seed=0`` must configure seed 0, not silently fall back to the
        # default (the old ``seed or DEFAULT`` bug).
        def draws(policy):
            return [policy.victim_way(8, 0) for _ in range(16)]

        zero_draws = draws(make_policy("random", seed=0))
        assert zero_draws == draws(RandomPolicy(seed=0))
        assert zero_draws != draws(make_policy("random"))

    def test_explicit_seed_zero_dip(self):
        # DIP's randomness drives bimodal insertion; seed 0 must configure
        # the same stream as a directly constructed DIPPolicy(seed=0).
        a = make_policy("dip", seed=0)
        b = DIPPolicy(seed=0)
        assert [a._rng.randrange(32) for _ in range(16)] == [
            b._rng.randrange(32) for _ in range(16)
        ]

    def test_default_seed_is_deterministic(self):
        a = make_policy("random")
        b = make_policy("random")
        assert [a.victim_way(8, 0) for _ in range(16)] == [
            b.victim_way(8, 0) for _ in range(16)
        ]
