"""Tests for CLI extras (CSV export) and example-script integrity."""

import csv
import py_compile
from pathlib import Path

import pytest

from repro.cli import main

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestCsvExport:
    def test_csv_written(self, tmp_path, capsys):
        assert main(["fig1", "--csv", str(tmp_path / "out")]) == 0
        csv_path = tmp_path / "out" / "fig1.csv"
        assert csv_path.exists()
        with open(csv_path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "cache"
        assert len(rows) == 3  # header + fast + slow

    def test_multiple_experiments_multiple_files(self, tmp_path, capsys):
        assert main(["fig1", "table4", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "fig1.csv").exists()
        assert (tmp_path / "table4.csv").exists()

    def test_report_write_csv_roundtrip(self, tmp_path):
        from repro.experiments.report import ExperimentResult, write_csv

        result = ExperimentResult("t", "t", headers=["a", "b"], rows=[[1, 2.5]])
        path = tmp_path / "t.csv"
        write_csv(result, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2.5"]]


class TestExamples:
    @pytest.mark.parametrize(
        "script",
        [
            "quickstart.py",
            "design_comparison.py",
            "predictor_study.py",
            "capacity_planning.py",
        ],
    )
    def test_example_compiles(self, script):
        py_compile.compile(str(EXAMPLES_DIR / script), doraise=True)

    def test_examples_directory_complete(self):
        scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
        assert "quickstart.py" in scripts
        assert len(scripts) >= 3

    def test_map_i_demo_runs(self, capsys):
        """The predictor_study demonstration path, without the sweep."""
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "predictor_study", EXAMPLES_DIR / "predictor_study.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.demonstrate_map_i()
        out = capsys.readouterr().out
        assert "96 bytes/core" in out
