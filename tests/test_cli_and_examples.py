"""Tests for CLI extras (CSV export) and example-script integrity."""

import csv
import py_compile
from pathlib import Path

import pytest

from repro.cli import main

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestCsvExport:
    def test_csv_written(self, tmp_path, capsys):
        assert main(["fig1", "--csv", str(tmp_path / "out")]) == 0
        csv_path = tmp_path / "out" / "fig1.csv"
        assert csv_path.exists()
        with open(csv_path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "cache"
        assert len(rows) == 3  # header + fast + slow

    def test_multiple_experiments_multiple_files(self, tmp_path, capsys):
        assert main(["fig1", "table4", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "fig1.csv").exists()
        assert (tmp_path / "table4.csv").exists()

    def test_report_write_csv_roundtrip(self, tmp_path):
        from repro.experiments.report import ExperimentResult, write_csv

        result = ExperimentResult("t", "t", headers=["a", "b"], rows=[[1, 2.5]])
        path = tmp_path / "t.csv"
        write_csv(result, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2.5"]]


class TestExamples:
    @pytest.mark.parametrize(
        "script",
        [
            "quickstart.py",
            "design_comparison.py",
            "predictor_study.py",
            "capacity_planning.py",
        ],
    )
    def test_example_compiles(self, script):
        py_compile.compile(str(EXAMPLES_DIR / script), doraise=True)

    def test_examples_directory_complete(self):
        scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
        assert "quickstart.py" in scripts
        assert len(scripts) >= 3

    def test_map_i_demo_runs(self, capsys):
        """The predictor_study demonstration path, without the sweep."""
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "predictor_study", EXAMPLES_DIR / "predictor_study.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.demonstrate_map_i()
        out = capsys.readouterr().out
        assert "96 bytes/core" in out


class TestSweepTraceAndMixes:
    def _write_k6(self, tmp_path):
        path = tmp_path / "k6_cli.trc"
        rows = [f"0x{(i % 11) * 64:x} P_MEM_RD {i * 7}" for i in range(1, 120)]
        path.write_text("\n".join(rows) + "\n")
        return path

    def test_trace_sweep_and_cached_rerun(self, tmp_path, capsys):
        path = self._write_k6(tmp_path)
        args = ["sweep", "--trace", str(path), "--designs", "alloy",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "trace:k6:" in out
        # Rerun: both cells (design + baseline) from the result cache.
        assert main([*args, "--expect-cache-hits", "2"]) == 0

    def test_trace_decoded_once_per_run(self, tmp_path, capsys):
        path = self._write_k6(tmp_path)
        assert main([
            "sweep", "--trace", str(path), "--designs", "alloy",
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        out = capsys.readouterr().out
        # The CLI decode is adopted into the arena: the sweep itself must
        # not re-run any workload build.
        assert "0 generator runs" in out

    def test_bad_trace_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "k6_bad.trc"
        path.write_text("0x1000 P_MEM_RD 5\nnot a record\n")
        code = main(["sweep", "--trace", str(path), "--designs", "alloy",
                     "--cache-dir", str(tmp_path / "cache")])
        assert code == 2
        assert "line 2" in capsys.readouterr().err

    def test_mix_sweep(self, tmp_path, capsys):
        assert main([
            "sweep", "--benchmarks", "mix1", "--designs", "alloy",
            "--reads", "300", "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        assert "mix1" in capsys.readouterr().out

    def test_unknown_workload_rejected(self, tmp_path, capsys):
        code = main(["sweep", "--benchmarks", "mix99", "--designs", "alloy",
                     "--cache-dir", str(tmp_path / "cache")])
        assert code == 2
        assert "mix1" in capsys.readouterr().err
