"""Tests for repro.stats primitives."""

import pytest

from repro.stats import Accumulator, Counter, Histogram, StatGroup, ratio


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("x").value == 0

    def test_add_default(self):
        c = Counter("x")
        c.add()
        c.add()
        assert c.value == 2

    def test_add_amount(self):
        c = Counter("x")
        c.add(5)
        assert c.value == 5

    def test_reset(self):
        c = Counter("x")
        c.add(3)
        c.reset()
        assert c.value == 0


class TestAccumulator:
    def test_empty_mean_is_zero(self):
        assert Accumulator("lat").mean == 0.0

    def test_mean(self):
        a = Accumulator("lat")
        for v in (10, 20, 30):
            a.sample(v)
        assert a.mean == pytest.approx(20.0)
        assert a.count == 3

    def test_min_max(self):
        a = Accumulator("lat")
        for v in (5, 1, 9):
            a.sample(v)
        assert a.min == 1
        assert a.max == 9

    def test_reset(self):
        a = Accumulator("lat")
        a.sample(7)
        a.reset()
        assert a.count == 0
        assert a.min is None and a.max is None


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("lat", [10, 100])
        for v in (5, 50, 500):
            h.sample(v)
        assert h.counts == [1, 1, 1]
        assert h.total == 3

    def test_edge_inclusive(self):
        h = Histogram("lat", [10])
        h.sample(10)
        assert h.counts[0] == 1

    def test_fraction_at_or_below(self):
        h = Histogram("lat", [10, 100])
        for v in (1, 2, 50, 500):
            h.sample(v)
        assert h.fraction_at_or_below(10) == pytest.approx(0.5)
        assert h.fraction_at_or_below(100) == pytest.approx(0.75)

    def test_fraction_empty(self):
        assert Histogram("lat", [1]).fraction_at_or_below(1) == 0.0

    def test_fraction_with_overflow_samples(self):
        # Regression: overflow samples used to vanish from the denominator's
        # reachable mass — fraction_at_or_below could never report the
        # overflow bucket, so no finite edge accounts for the 500 sample,
        # but +inf (the overflow bucket's upper edge) must reach 1.0.
        h = Histogram("lat", [10, 100])
        for v in (1, 2, 50, 500):
            h.sample(v)
        assert h.fraction_at_or_below(100) == pytest.approx(0.75)
        assert h.fraction_at_or_below(float("inf")) == pytest.approx(1.0)

    def test_fraction_all_overflow(self):
        h = Histogram("lat", [10])
        h.sample(99)
        assert h.fraction_at_or_below(10) == 0.0
        assert h.fraction_at_or_below(float("inf")) == 1.0

    def test_overflow_count_and_fraction(self):
        h = Histogram("lat", [10, 100])
        assert h.overflow_count == 0
        assert h.overflow_fraction == 0.0
        for v in (5, 500, 5000):
            h.sample(v)
        assert h.overflow_count == 2
        assert h.overflow_fraction == pytest.approx(2 / 3)

    def test_percentile_q0_skips_empty_leading_buckets(self):
        # The minimum sample lives in the second bucket; q=0.0 must report
        # that bucket's upper edge, not edges[0] of an empty bucket.
        h = Histogram("lat", [10, 100, 1000])
        h.sample(50)
        h.sample(500)
        assert h.percentile(0.0) == 100
        assert h.percentile(1.0) == 1000

    def test_percentile_q0_first_bucket_occupied(self):
        h = Histogram("lat", [10, 100])
        h.sample(5)
        assert h.percentile(0.0) == 10

    def test_percentile_single_bucket(self):
        h = Histogram("lat", [10])
        h.sample(3)
        assert h.percentile(0.0) == 10
        assert h.percentile(0.5) == 10
        assert h.percentile(1.0) == 10

    def test_percentile_overflow_only(self):
        h = Histogram("lat", [10])
        h.sample(99)
        assert h.percentile(0.0) == float("inf")
        assert h.percentile(1.0) == float("inf")

    def test_percentile_empty_and_bounds(self):
        h = Histogram("lat", [10])
        assert h.percentile(0.0) == 0.0
        assert h.percentile(1.0) == 0.0
        with pytest.raises(ValueError):
            h.percentile(1.5)
        with pytest.raises(ValueError):
            h.percentile(-0.1)

    def test_bisect_matches_linear_scan(self):
        """Micro-assertion: bucket assignment is unchanged by the bisect
        rewrite of ``sample`` (including exact edges and overflow)."""
        edges = [0, 10, 10.5, 100, 1000]

        def linear_bucket(value):
            for i, edge in enumerate(edges):
                if value <= edge:
                    return i
            return len(edges)

        h = Histogram("lat", edges)
        samples = [-5, 0, 0.1, 9.99, 10, 10.25, 10.5, 11, 100, 500, 1000,
                   1000.01, 1e9]
        for value in samples:
            h.sample(value)
        expected = [0] * (len(edges) + 1)
        for value in samples:
            expected[linear_bucket(value)] += 1
        assert h.counts == expected


class TestRatio:
    def test_normal(self):
        assert ratio(1, 4) == 0.25

    def test_zero_denominator(self):
        assert ratio(5, 0) == 0.0


class TestStatGroup:
    def test_counter_lazy_creation(self):
        g = StatGroup("g")
        g.counter("hits").add()
        assert g.counter("hits").value == 1

    def test_same_counter_returned(self):
        g = StatGroup("g")
        assert g.counter("a") is g.counter("a")

    def test_accumulator(self):
        g = StatGroup("g")
        g.accumulator("lat").sample(4.0)
        assert g.accumulator("lat").mean == 4.0

    def test_reset_clears_all(self):
        g = StatGroup("g")
        g.counter("a").add(2)
        g.accumulator("b").sample(1.0)
        g.reset()
        assert g.counter("a").value == 0
        assert g.accumulator("b").count == 0

    def test_as_dict(self):
        g = StatGroup("g")
        g.counter("hits").add(3)
        g.accumulator("lat").sample(10.0)
        d = g.as_dict()
        assert d["hits"] == 3
        assert d["lat_mean"] == 10.0
        assert d["lat_count"] == 1
