"""Tests for trace containers."""

import numpy as np
import pytest

from repro.workloads.trace import CoreTrace, Workload


def make_trace(n=10, writes=0, instructions=1000):
    is_write = np.zeros(n, dtype=bool)
    is_write[:writes] = True
    return CoreTrace(
        gaps=np.full(n, 2.0),
        addresses=np.arange(n, dtype=np.int64),
        is_write=is_write,
        pcs=np.full(n, 0x400, dtype=np.int64),
        instructions=instructions,
    )


class TestCoreTrace:
    def test_length(self):
        assert len(make_trace(7)) == 7

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            CoreTrace(
                gaps=np.zeros(3),
                addresses=np.zeros(4, dtype=np.int64),
                is_write=np.zeros(4, dtype=bool),
                pcs=np.zeros(4, dtype=np.int64),
                instructions=10,
            )

    def test_read_write_counts(self):
        t = make_trace(10, writes=3)
        assert t.num_writes == 3
        assert t.num_reads == 7

    def test_mpki_counts_reads_only(self):
        t = make_trace(10, writes=2, instructions=1000)
        assert t.mpki == pytest.approx(8.0)

    def test_mpki_zero_instructions(self):
        t = make_trace(instructions=0)
        assert t.mpki == 0.0

    def test_unique_lines(self):
        t = CoreTrace(
            gaps=np.zeros(4),
            addresses=np.array([1, 1, 2, 3], dtype=np.int64),
            is_write=np.zeros(4, dtype=bool),
            pcs=np.zeros(4, dtype=np.int64),
            instructions=1,
        )
        assert t.unique_lines() == 3

    def test_records_iteration(self):
        t = make_trace(3)
        records = list(t.records())
        assert len(records) == 3
        gap, addr, is_write, pc = records[1]
        assert (gap, addr, is_write, pc) == (2.0, 1, False, 0x400)

    def test_offset_addresses(self):
        t = make_trace(3)
        shifted = t.offset_addresses(100)
        assert list(shifted.addresses) == [100, 101, 102]
        assert list(t.addresses) == [0, 1, 2]  # original untouched


class TestWorkload:
    def test_aggregates(self):
        w = Workload("test", [make_trace(10), make_trace(5)])
        assert w.num_cores == 2
        assert w.total_requests == 15
        assert w.total_instructions == 2000

    def test_mpki(self):
        w = Workload("test", [make_trace(10, writes=2)])
        assert w.mpki == pytest.approx(8.0)

    def test_footprint(self):
        w = Workload("test", [make_trace(4), make_trace(4).offset_addresses(1000)])
        assert w.footprint_lines() == 8
        assert w.footprint_bytes() == 8 * 64
