"""Tests for the functional L3 filter front-end."""

import numpy as np
import pytest

from repro.sim.l3_filter import L3_LATENCY, L3Filter
from repro.workloads.trace import CoreTrace, Workload


def raw_workload(addresses_per_core, gaps=5.0, writes=None):
    cores = []
    for core_id, addresses in enumerate(addresses_per_core):
        n = len(addresses)
        is_write = np.zeros(n, dtype=bool)
        if writes:
            for idx in writes.get(core_id, []):
                is_write[idx] = True
        cores.append(
            CoreTrace(
                gaps=np.full(n, gaps),
                addresses=np.array(addresses, dtype=np.int64),
                is_write=is_write,
                pcs=np.full(n, 0x400, dtype=np.int64),
                instructions=n * 10,
            )
        )
    return Workload("raw", cores)


@pytest.fixture
def small_filter():
    # 16 sets x 2 ways after scaling: tiny, to force evictions.
    return L3Filter(capacity_bytes=16 * 64 * 2 * 256, ways=2, capacity_scale=256)


class TestFiltering:
    def test_repeated_line_filtered_to_one_miss(self, small_filter):
        workload = raw_workload([[7, 7, 7, 7]])
        filtered = small_filter.filter_workload(workload)
        assert len(filtered.cores[0]) == 1
        assert filtered.cores[0].addresses[0] == 7
        assert small_filter.stats.hits == 3
        assert small_filter.stats.demand_misses == 1

    def test_absorbed_hits_become_gap_credit(self, small_filter):
        workload = raw_workload([[7, 7, 7, 9999]], gaps=5.0)
        filtered = small_filter.filter_workload(workload)
        # The final miss inherits the two absorbed hits' gaps + L3 latency.
        assert filtered.cores[0].gaps[-1] == pytest.approx(5.0 + 2 * (5.0 + L3_LATENCY))

    def test_distinct_lines_all_miss(self, small_filter):
        workload = raw_workload([[1, 2, 3, 4]])
        filtered = small_filter.filter_workload(workload)
        assert len(filtered.cores[0]) == 4
        assert small_filter.stats.hit_rate == 0.0

    def test_dirty_victims_emitted_as_writebacks(self, small_filter):
        sets = small_filter.cache.num_sets
        # Write to line 0 (dirty), then evict it with two same-set conflicts.
        workload = raw_workload(
            [[0, sets, 2 * sets, 3 * sets]], writes={0: [0]}
        )
        filtered = small_filter.filter_workload(workload)
        assert small_filter.stats.writebacks == 1
        assert bool(filtered.cores[0].is_write.any())
        wb_addr = int(filtered.cores[0].addresses[filtered.cores[0].is_write][0])
        assert wb_addr == 0

    def test_upper_level_writeback_not_demanded(self, small_filter):
        # A write miss allocates silently: no demand read downstream.
        workload = raw_workload([[42]], writes={0: [0]})
        filtered = small_filter.filter_workload(workload)
        assert len(filtered.cores[0]) == 0
        assert small_filter.stats.demand_misses == 0

    def test_shared_across_cores(self, small_filter):
        # Core 1 hits on a line core 0 brought in (shared L3).
        workload = raw_workload([[5], [5]])
        filtered = small_filter.filter_workload(workload)
        total = sum(len(t) for t in filtered.cores)
        assert total == 1
        assert small_filter.stats.hits == 1

    def test_workload_renamed(self, small_filter):
        filtered = small_filter.filter_workload(raw_workload([[1]]))
        assert filtered.name.endswith("+l3")

    def test_instructions_preserved(self, small_filter):
        workload = raw_workload([[1, 2, 3]])
        filtered = small_filter.filter_workload(workload)
        assert filtered.cores[0].instructions == workload.cores[0].instructions


class TestEndToEnd:
    def test_filtered_stream_simulates(self):
        from repro.sim.config import SystemConfig
        from repro.sim.runner import run_design
        from repro.units import MB

        rng = np.random.default_rng(3)
        addresses = rng.integers(0, 4000, 400).tolist()
        workload = raw_workload([addresses, [a + 100_000 for a in addresses]])
        l3 = L3Filter(capacity_scale=4096)
        filtered = l3.filter_workload(workload)
        assert 0 < l3.stats.hit_rate < 1
        config = SystemConfig(num_cores=2, cache_size_bytes=256 * MB, capacity_scale=4096)
        result = run_design("alloy-map-i", filtered, config)
        assert result.cycles > 0
