"""Tests for trace file I/O (npz round-trip and CSV interchange)."""

import numpy as np
import pytest

from repro.workloads.tracefile import (
    export_csv,
    import_csv,
    load_workload,
    save_workload,
)
from repro.workloads.trace import CoreTrace, Workload


@pytest.fixture
def workload():
    cores = []
    for core_id in range(3):
        n = 10 + core_id
        cores.append(
            CoreTrace(
                gaps=np.linspace(0, 5, n),
                addresses=np.arange(n, dtype=np.int64) + core_id * 1000,
                is_write=np.array([i % 3 == 0 for i in range(n)]),
                pcs=np.arange(n, dtype=np.int64) * 4 + 0x400000,
                instructions=n * 100,
            )
        )
    return Workload("roundtrip", cores)


class TestNpzRoundTrip:
    def test_identity(self, workload, tmp_path):
        path = tmp_path / "w.npz"
        save_workload(workload, path)
        loaded = load_workload(path)
        assert loaded.name == workload.name
        assert loaded.num_cores == workload.num_cores
        for a, b in zip(loaded.cores, workload.cores):
            assert np.array_equal(a.gaps, b.gaps)
            assert np.array_equal(a.addresses, b.addresses)
            assert np.array_equal(a.is_write, b.is_write)
            assert np.array_equal(a.pcs, b.pcs)
            assert a.instructions == b.instructions

    def test_aggregate_stats_preserved(self, workload, tmp_path):
        path = tmp_path / "w.npz"
        save_workload(workload, path)
        loaded = load_workload(path)
        assert loaded.mpki == workload.mpki
        assert loaded.footprint_lines() == workload.footprint_lines()


class TestCsvInterchange:
    def test_roundtrip(self, workload, tmp_path):
        path = tmp_path / "w.csv"
        export_csv(workload, path)
        loaded = import_csv(path, name="roundtrip")
        assert loaded.num_cores == workload.num_cores
        for a, b in zip(loaded.cores, workload.cores):
            assert np.array_equal(a.addresses, b.addresses)
            assert np.array_equal(a.is_write, b.is_write)
            assert np.allclose(a.gaps, b.gaps)

    def test_header_written(self, workload, tmp_path):
        path = tmp_path / "w.csv"
        export_csv(workload, path)
        first = path.read_text().splitlines()[0]
        assert first == "core,gap,address,write,pc"

    def test_hand_written_csv(self, tmp_path):
        path = tmp_path / "hand.csv"
        path.write_text(
            "core,gap,address,write,pc\n"
            "0,5.0,100,0,1024\n"
            "0,0.0,101,1,0\n"
            "1,2.5,200,0,2048\n"
        )
        workload = import_csv(path, instructions_per_core=500)
        assert workload.num_cores == 2
        assert workload.cores[0].num_writes == 1
        assert workload.cores[0].instructions == 500

    def test_dtypes_canonicalized(self, tmp_path):
        # Imported arrays must match the generated-trace dtypes exactly so
        # downstream code (npz round-trip, the batch engine's vectorized
        # decode) never sees an object or float32 surprise.
        path = tmp_path / "dtypes.csv"
        path.write_text(
            "core,gap,address,write,pc\n"
            "0,1.5,100,0,1024\n"
            "0,0,101,1,1028\n"
        )
        trace = import_csv(path).cores[0]
        assert trace.gaps.dtype == np.float64
        assert trace.addresses.dtype == np.int64
        assert trace.is_write.dtype == np.bool_
        assert trace.pcs.dtype == np.int64

    def test_dtypes_survive_npz_roundtrip(self, tmp_path):
        path = tmp_path / "dtypes.csv"
        path.write_text("core,gap,address,write,pc\n0,1.0,100,1,4\n")
        workload = import_csv(path)
        npz = tmp_path / "w.npz"
        save_workload(workload, npz)
        trace = load_workload(npz).cores[0]
        assert trace.gaps.dtype == np.float64
        assert trace.addresses.dtype == np.int64
        assert trace.is_write.dtype == np.bool_
        assert trace.pcs.dtype == np.int64

    def test_out_of_order_core_ids(self, tmp_path):
        # Rows for core 2 arrive before core 0; cores come back sorted by
        # id with per-core request order preserved.
        path = tmp_path / "ooo.csv"
        path.write_text(
            "core,gap,address,write,pc\n"
            "2,1.0,200,0,8\n"
            "0,2.0,100,0,4\n"
            "2,3.0,201,0,12\n"
            "0,4.0,101,0,16\n"
        )
        workload = import_csv(path)
        assert workload.num_cores == 2
        assert list(workload.cores[0].addresses) == [100, 101]
        assert list(workload.cores[1].addresses) == [200, 201]
        assert list(workload.cores[1].gaps) == [1.0, 3.0]

    def test_instructions_per_core_defaulting(self, tmp_path):
        path = tmp_path / "instr.csv"
        path.write_text(
            "core,gap,address,write,pc\n"
            + "".join(f"0,1.0,{i},0,4\n" for i in range(7))
        )
        assert import_csv(path).cores[0].instructions == 7 * 50
        assert (
            import_csv(path, instructions_per_core=123).cores[0].instructions
            == 123
        )

    @pytest.mark.parametrize(
        "row,match",
        [
            ("0,abc,100,0,4", r"line 2: gap='abc' is not a number"),
            ("0,-1.0,100,0,4", r"line 2: gap='-1.0' must be >= 0"),
            ("0,nan,100,0,4", r"line 2: gap='nan' must be >= 0"),
            ("0,1.0,-5,0,4", r"line 2: address=-5 must be >= 0"),
            ("0,1.0,1.5,0,4", r"line 2: address='1.5' is not an integer"),
            ("0,1.0,100,yes,4", r"line 2: write='yes' is not an integer"),
            ("0,1.0,100,0,0x4", r"line 2: pc='0x4' is not an integer"),
            ("x,1.0,100,0,4", r"line 2: core='x' is not an integer"),
            ("0,1.0,100,0", r"line 2: missing 'pc' value"),
        ],
    )
    def test_malformed_rows_rejected_with_line_number(self, tmp_path, row, match):
        path = tmp_path / "bad.csv"
        path.write_text("core,gap,address,write,pc\n" + row + "\n")
        with pytest.raises(ValueError, match=match):
            import_csv(path)

    def test_error_names_later_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "core,gap,address,write,pc\n"
            "0,1.0,100,0,4\n"
            "0,1.0,100,0,4\n"
            "0,bogus,100,0,4\n"
        )
        with pytest.raises(ValueError, match="line 4"):
            import_csv(path)

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("core,address\n0,1\n")
        with pytest.raises(ValueError, match="columns"):
            import_csv(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("core,gap,address,write,pc\n")
        with pytest.raises(ValueError, match="no requests"):
            import_csv(path)

    def test_imported_workload_simulates(self, tmp_path):
        from repro.sim.config import SystemConfig
        from repro.sim.runner import run_design
        from repro.units import MB

        path = tmp_path / "sim.csv"
        rows = ["core,gap,address,write,pc"]
        for core in range(2):
            for i in range(30):
                rows.append(f"{core},10.0,{core * 100000 + i % 5},0,{0x400 + i % 3 * 4}")
        path.write_text("\n".join(rows) + "\n")
        workload = import_csv(path)
        config = SystemConfig(num_cores=2, cache_size_bytes=256 * MB, capacity_scale=4096)
        result = run_design("alloy-map-i", workload, config)
        assert result.cycles > 0
        assert result.read_hit_rate > 0.5  # 5-line loop fits trivially
