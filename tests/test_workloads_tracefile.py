"""Tests for trace file I/O: npz round-trip, CSV interchange, and the
streaming DRAMSim2 k6/mase decoders with their trace-spec workload names."""

import gzip

import numpy as np
import pytest

from repro.workloads.tracefile import (
    NOMINAL_INSTRUCTIONS_PER_REQUEST,
    decode_trace,
    export_csv,
    file_digest,
    import_csv,
    is_trace_spec,
    load_workload,
    parse_trace_spec,
    save_workload,
    sniff_format,
    trace_workload_spec,
    workload_from_spec,
)
from repro.workloads.trace import CoreTrace, Workload


@pytest.fixture
def workload():
    cores = []
    for core_id in range(3):
        n = 10 + core_id
        cores.append(
            CoreTrace(
                gaps=np.linspace(0, 5, n),
                addresses=np.arange(n, dtype=np.int64) + core_id * 1000,
                is_write=np.array([i % 3 == 0 for i in range(n)]),
                pcs=np.arange(n, dtype=np.int64) * 4 + 0x400000,
                instructions=n * 100,
            )
        )
    return Workload("roundtrip", cores)


class TestNpzRoundTrip:
    def test_identity(self, workload, tmp_path):
        path = tmp_path / "w.npz"
        save_workload(workload, path)
        loaded = load_workload(path)
        assert loaded.name == workload.name
        assert loaded.num_cores == workload.num_cores
        for a, b in zip(loaded.cores, workload.cores):
            assert np.array_equal(a.gaps, b.gaps)
            assert np.array_equal(a.addresses, b.addresses)
            assert np.array_equal(a.is_write, b.is_write)
            assert np.array_equal(a.pcs, b.pcs)
            assert a.instructions == b.instructions

    def test_aggregate_stats_preserved(self, workload, tmp_path):
        path = tmp_path / "w.npz"
        save_workload(workload, path)
        loaded = load_workload(path)
        assert loaded.mpki == workload.mpki
        assert loaded.footprint_lines() == workload.footprint_lines()


class TestCsvInterchange:
    def test_roundtrip(self, workload, tmp_path):
        path = tmp_path / "w.csv"
        export_csv(workload, path)
        loaded = import_csv(path, name="roundtrip")
        assert loaded.num_cores == workload.num_cores
        for a, b in zip(loaded.cores, workload.cores):
            assert np.array_equal(a.addresses, b.addresses)
            assert np.array_equal(a.is_write, b.is_write)
            assert np.allclose(a.gaps, b.gaps)

    def test_header_written(self, workload, tmp_path):
        path = tmp_path / "w.csv"
        export_csv(workload, path)
        first = path.read_text().splitlines()[0]
        assert first == "core,gap,address,write,pc"

    def test_hand_written_csv(self, tmp_path):
        path = tmp_path / "hand.csv"
        path.write_text(
            "core,gap,address,write,pc\n"
            "0,5.0,100,0,1024\n"
            "0,0.0,101,1,0\n"
            "1,2.5,200,0,2048\n"
        )
        workload = import_csv(path, instructions_per_core=500)
        assert workload.num_cores == 2
        assert workload.cores[0].num_writes == 1
        assert workload.cores[0].instructions == 500

    def test_dtypes_canonicalized(self, tmp_path):
        # Imported arrays must match the generated-trace dtypes exactly so
        # downstream code (npz round-trip, the batch engine's vectorized
        # decode) never sees an object or float32 surprise.
        path = tmp_path / "dtypes.csv"
        path.write_text(
            "core,gap,address,write,pc\n"
            "0,1.5,100,0,1024\n"
            "0,0,101,1,1028\n"
        )
        trace = import_csv(path).cores[0]
        assert trace.gaps.dtype == np.float64
        assert trace.addresses.dtype == np.int64
        assert trace.is_write.dtype == np.bool_
        assert trace.pcs.dtype == np.int64

    def test_dtypes_survive_npz_roundtrip(self, tmp_path):
        path = tmp_path / "dtypes.csv"
        path.write_text("core,gap,address,write,pc\n0,1.0,100,1,4\n")
        workload = import_csv(path)
        npz = tmp_path / "w.npz"
        save_workload(workload, npz)
        trace = load_workload(npz).cores[0]
        assert trace.gaps.dtype == np.float64
        assert trace.addresses.dtype == np.int64
        assert trace.is_write.dtype == np.bool_
        assert trace.pcs.dtype == np.int64

    def test_out_of_order_core_ids(self, tmp_path):
        # Rows for core 2 arrive before core 0; cores come back sorted by
        # id with per-core request order preserved.
        path = tmp_path / "ooo.csv"
        path.write_text(
            "core,gap,address,write,pc\n"
            "2,1.0,200,0,8\n"
            "0,2.0,100,0,4\n"
            "2,3.0,201,0,12\n"
            "0,4.0,101,0,16\n"
        )
        workload = import_csv(path)
        assert workload.num_cores == 2
        assert list(workload.cores[0].addresses) == [100, 101]
        assert list(workload.cores[1].addresses) == [200, 201]
        assert list(workload.cores[1].gaps) == [1.0, 3.0]

    def test_instructions_per_core_defaulting(self, tmp_path):
        path = tmp_path / "instr.csv"
        path.write_text(
            "core,gap,address,write,pc\n"
            + "".join(f"0,1.0,{i},0,4\n" for i in range(7))
        )
        assert import_csv(path).cores[0].instructions == 7 * 50
        assert (
            import_csv(path, instructions_per_core=123).cores[0].instructions
            == 123
        )

    @pytest.mark.parametrize(
        "row,match",
        [
            ("0,abc,100,0,4", r"line 2: gap='abc' is not a number"),
            ("0,-1.0,100,0,4", r"line 2: gap='-1.0' must be >= 0"),
            ("0,nan,100,0,4", r"line 2: gap='nan' must be >= 0"),
            ("0,1.0,-5,0,4", r"line 2: address=-5 must be >= 0"),
            ("0,1.0,1.5,0,4", r"line 2: address='1.5' is not an integer"),
            ("0,1.0,100,yes,4", r"line 2: write='yes' is not an integer"),
            ("0,1.0,100,0,0x4", r"line 2: pc='0x4' is not an integer"),
            ("x,1.0,100,0,4", r"line 2: core='x' is not an integer"),
            ("0,1.0,100,0", r"line 2: missing 'pc' value"),
        ],
    )
    def test_malformed_rows_rejected_with_line_number(self, tmp_path, row, match):
        path = tmp_path / "bad.csv"
        path.write_text("core,gap,address,write,pc\n" + row + "\n")
        with pytest.raises(ValueError, match=match):
            import_csv(path)

    def test_error_names_later_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "core,gap,address,write,pc\n"
            "0,1.0,100,0,4\n"
            "0,1.0,100,0,4\n"
            "0,bogus,100,0,4\n"
        )
        with pytest.raises(ValueError, match="line 4"):
            import_csv(path)

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("core,address\n0,1\n")
        with pytest.raises(ValueError, match="columns"):
            import_csv(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("core,gap,address,write,pc\n")
        with pytest.raises(ValueError, match="no requests"):
            import_csv(path)

    def test_imported_workload_simulates(self, tmp_path):
        from repro.sim.config import SystemConfig
        from repro.sim.runner import run_design
        from repro.units import MB

        path = tmp_path / "sim.csv"
        rows = ["core,gap,address,write,pc"]
        for core in range(2):
            for i in range(30):
                rows.append(f"{core},10.0,{core * 100000 + i % 5},0,{0x400 + i % 3 * 4}")
        path.write_text("\n".join(rows) + "\n")
        workload = import_csv(path)
        config = SystemConfig(num_cores=2, cache_size_bytes=256 * MB, capacity_scale=4096)
        result = run_design("alloy-map-i", workload, config)
        assert result.cycles > 0
        assert result.read_hit_rate > 0.5  # 5-line loop fits trivially

    def test_nominal_default_mpki(self, tmp_path):
        # 50 instructions/request and an all-read stream means MPKI 20.
        path = tmp_path / "mpki.csv"
        path.write_text(
            "core,gap,address,write,pc\n"
            + "".join(f"0,1.0,{i},0,4\n" for i in range(40))
        )
        workload = import_csv(path)
        assert NOMINAL_INSTRUCTIONS_PER_REQUEST == 50
        assert workload.cores[0].instructions == 40 * 50
        assert workload.mpki == pytest.approx(20.0)

    def test_explicit_zero_instructions_honored(self, tmp_path):
        # The old signature defaulted to 0 and coerced explicit 0 back to
        # nominal via `or`; an explicit 0 must now survive.
        path = tmp_path / "zero.csv"
        path.write_text("core,gap,address,write,pc\n0,1.0,100,0,4\n")
        assert import_csv(path, instructions_per_core=0).cores[0].instructions == 0

    def test_gzip_roundtrip_preserves_dtypes_and_values(self, workload, tmp_path):
        path = tmp_path / "w.csv.gz"
        export_csv(workload, path)
        with gzip.open(path, "rb") as handle:  # really gzipped
            assert handle.readline() == b"core,gap,address,write,pc\n"
        loaded = import_csv(path, name="roundtrip")
        for a, b in zip(loaded.cores, workload.cores):
            # %.17g formatting makes the float64 gaps round-trip exactly.
            assert np.array_equal(a.gaps, b.gaps)
            assert np.array_equal(a.addresses, b.addresses)
            assert np.array_equal(a.is_write, b.is_write)
            assert np.array_equal(a.pcs, b.pcs)
            assert a.gaps.dtype == np.float64
            assert a.is_write.dtype == np.bool_

    def test_plain_and_gzip_export_identical_content(self, workload, tmp_path):
        plain = tmp_path / "w.csv"
        packed = tmp_path / "w.csv.gz"
        export_csv(workload, plain)
        export_csv(workload, packed)
        with gzip.open(packed, "rb") as handle:
            assert handle.read() == plain.read_bytes()

    def test_corrupt_gzip_rejected(self, tmp_path):
        path = tmp_path / "w.csv.gz"
        buf = gzip.compress(
            b"core,gap,address,write,pc\n" + b"0,1.0,100,0,4\n" * 200
        )
        path.write_bytes(buf[: len(buf) // 2])
        with pytest.raises(ValueError, match="corrupt or truncated gzip"):
            import_csv(path)


# ----------------------------------------------------------------------
# DRAMSim2 k6/mase streaming decode
# ----------------------------------------------------------------------
def _write_k6(path, rows):
    with open(path, "w") as handle:
        for addr, cmd, cycle in rows:
            handle.write(f"0x{addr:x} {cmd} {cycle}\n")


@pytest.fixture
def k6_rows():
    rng = np.random.default_rng(3)
    rows, cycle = [], 0
    for _ in range(300):
        cycle += int(rng.integers(1, 60))
        cmd = "P_MEM_WR" if rng.random() < 0.3 else "P_MEM_RD"
        rows.append((int(rng.integers(0, 1 << 30)) << 6, cmd, cycle))
    return rows


class TestTraceDecode:
    def test_k6_command_mapping_and_normalization(self, tmp_path):
        path = tmp_path / "k6_small.trc"
        _write_k6(
            path,
            [
                (0x1000, "P_MEM_RD", 10),
                (0x2040, "P_MEM_WR", 25),
                (0x3080, "P_FETCH", 40),
                (0x4000, "P_LOCK_RD", 41),
                (0x5000, "P_LOCK_WR", 90),
            ],
        )
        workload = decode_trace(path)
        assert workload.num_cores == 1
        trace = workload.cores[0]
        assert trace.addresses.tolist() == [
            0x1000 >> 6, 0x2040 >> 6, 0x3080 >> 6, 0x4000 >> 6, 0x5000 >> 6
        ]
        assert trace.is_write.tolist() == [False, True, False, False, True]
        # Gaps are cycle deltas; the first gap is the first record's cycle.
        assert trace.gaps.tolist() == [10.0, 15.0, 15.0, 1.0, 49.0]
        assert trace.gaps.dtype == np.float64
        assert trace.addresses.dtype == np.int64
        assert not trace.pcs.any()
        assert trace.instructions == 5 * NOMINAL_INSTRUCTIONS_PER_REQUEST

    def test_boff_records_skipped(self, tmp_path):
        path = tmp_path / "k6_boff.trc"
        _write_k6(
            path,
            [(0x1000, "P_MEM_RD", 5), (0xFFFF, "BOFF", 7), (0x2000, "P_MEM_RD", 9)],
        )
        trace = decode_trace(path).cores[0]
        assert len(trace) == 2
        assert trace.gaps.tolist() == [5.0, 4.0]

    def test_mase_command_mapping(self, tmp_path):
        path = tmp_path / "mase_small.trc"
        _write_k6(
            path,
            [(0x1000, "MEMRD", 1), (0x2000, "IFETCH", 2), (0x3000, "MEMWR", 3)],
        )
        trace = decode_trace(path).cores[0]
        assert trace.is_write.tolist() == [False, False, True]

    def test_blank_lines_and_whitespace_tolerated(self, tmp_path):
        path = tmp_path / "k6_ws.trc"
        path.write_text("\n  0x1000 P_MEM_RD 5  \n\n0x2000 P_MEM_WR 9\n\n")
        trace = decode_trace(path).cores[0]
        assert len(trace) == 2

    def test_chunked_decode_bit_exact(self, tmp_path, k6_rows):
        path = tmp_path / "k6_big.trc"
        _write_k6(path, k6_rows)
        whole = decode_trace(path, chunk_bytes=1 << 30).cores[0]
        assert path.stat().st_size > 64  # chunking genuinely kicks in
        for chunk_bytes in (64, 257, 4096):
            chunked = decode_trace(path, chunk_bytes=chunk_bytes).cores[0]
            assert np.array_equal(chunked.gaps, whole.gaps)
            assert np.array_equal(chunked.addresses, whole.addresses)
            assert np.array_equal(chunked.is_write, whole.is_write)
            assert chunked.instructions == whole.instructions

    def test_gzip_decode_matches_plain(self, tmp_path, k6_rows):
        plain = tmp_path / "k6_plain.trc"
        _write_k6(plain, k6_rows)
        # Suffix deliberately unhelpful: detection is by magic bytes.
        packed = tmp_path / "k6_packed.trc"
        packed.write_bytes(gzip.compress(plain.read_bytes()))
        a = decode_trace(plain, chunk_bytes=128).cores[0]
        b = decode_trace(packed, chunk_bytes=128).cores[0]
        assert np.array_equal(a.gaps, b.gaps)
        assert np.array_equal(a.addresses, b.addresses)
        assert np.array_equal(a.is_write, b.is_write)

    def test_missing_trailing_newline_ok(self, tmp_path):
        path = tmp_path / "k6_nonl.trc"
        path.write_text("0x1000 P_MEM_RD 5\n0x2000 P_MEM_RD 9")
        assert len(decode_trace(path).cores[0]) == 2

    @pytest.mark.parametrize(
        "line,match",
        [
            ("0x1000 P_MEM_RD", r"line 2: expected"),
            ("0x1000 P_MEM_RD 5 extra", r"line 2: expected"),
            ("zzz P_MEM_RD 5", r"line 2: address='zzz' is not a hex"),
            ("0x1000 NOPE 5", r"line 2: unknown k6 command 'NOPE'"),
            ("0x1000 MEMRD 5", r"line 2: unknown k6 command 'MEMRD'"),
            ("0x1000 P_MEM_RD 5.5", r"line 2: cycle='5.5' is not an integer"),
            ("0x1000 P_MEM_RD -5", r"line 2: cycle=-5 must be >= 0"),
        ],
    )
    def test_malformed_lines_rejected_with_line_number(self, tmp_path, line, match):
        path = tmp_path / "k6_bad.trc"
        path.write_text("0x1000 P_MEM_RD 1\n" + line + "\n")
        with pytest.raises(ValueError, match=match):
            decode_trace(path)

    def test_error_line_number_exact_in_later_chunk(self, tmp_path):
        # The fault sits far past the first block: the block-local rescan
        # must still name the absolute line.
        lines = [f"0x{i * 64:x} P_MEM_RD {i}" for i in range(1, 200)]
        lines.insert(150, "0x1000 BROKEN 999999")
        path = tmp_path / "k6_deep.trc"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="line 151: unknown k6 command"):
            decode_trace(path, chunk_bytes=256)

    def test_nonmonotonic_cycles_rejected(self, tmp_path):
        path = tmp_path / "k6_back.trc"
        _write_k6(path, [(0x1000, "P_MEM_RD", 50), (0x2000, "P_MEM_RD", 49)])
        with pytest.raises(ValueError, match="line 2: cycle 49 goes backwards"):
            decode_trace(path)

    def test_nonmonotonic_across_chunks_rejected(self, tmp_path):
        rows = [(i * 64, "P_MEM_RD", i) for i in range(1, 100)]
        rows.append((0x100, "P_MEM_RD", 3))
        path = tmp_path / "k6_back2.trc"
        _write_k6(path, rows)
        with pytest.raises(ValueError, match="line 100: cycle 3 goes backwards"):
            decode_trace(path, chunk_bytes=128)

    def test_corrupt_gzip_rejected(self, tmp_path):
        path = tmp_path / "k6_corrupt.trc"
        buf = gzip.compress(b"0x1000 P_MEM_RD 5\n" * 500)
        path.write_bytes(buf[: len(buf) // 2])
        with pytest.raises(ValueError, match="corrupt or truncated gzip"):
            decode_trace(path, format="k6")

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "k6_empty.trc"
        path.write_text("\n\n")
        with pytest.raises(ValueError, match="no requests"):
            decode_trace(path)

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "k6_x.trc"
        path.write_text("0x1000 P_MEM_RD 5\n")
        with pytest.raises(ValueError, match="unknown trace format"):
            decode_trace(path, format="pin")

    def test_decoded_workload_simulates(self, tmp_path):
        from repro.sim.config import SystemConfig
        from repro.sim.runner import run_design
        from repro.units import MB

        path = tmp_path / "k6_sim.trc"
        _write_k6(
            path,
            [((i % 7) * 64, "P_MEM_RD", i * 10) for i in range(1, 60)],
        )
        workload = decode_trace(path)
        config = SystemConfig(
            num_cores=1, cache_size_bytes=256 * MB, capacity_scale=4096
        )
        result = run_design("alloy-map-i", workload, config)
        assert result.cycles > 0
        assert result.read_hit_rate > 0.5


class TestSniffFormat:
    def test_prefixes_and_extensions(self, tmp_path):
        assert sniff_format("k6_vortex.trc") == "k6"
        assert sniff_format("K6_vortex.trc.gz") == "k6"
        assert sniff_format("mase_art.trc") == "mase"
        assert sniff_format(tmp_path / "mase_art.trc.gz") == "mase"
        assert sniff_format("requests.csv") == "csv"
        assert sniff_format("requests.csv.gz") == "csv"

    def test_unsniffable_name_rejected(self):
        with pytest.raises(ValueError, match="cannot infer trace format"):
            sniff_format("mystery.trc")


class TestTraceSpecs:
    def test_roundtrip(self, tmp_path, k6_rows):
        path = tmp_path / "k6_spec.trc"
        _write_k6(path, k6_rows)
        spec = trace_workload_spec(path)
        assert is_trace_spec(spec)
        parsed = parse_trace_spec(spec)
        assert parsed.format == "k6"
        assert parsed.path == str(path)
        assert parsed.digest == file_digest(path)[:16]
        direct = decode_trace(path).cores[0]
        via_spec = workload_from_spec(spec).cores[0]
        assert np.array_equal(direct.addresses, via_spec.addresses)
        assert np.array_equal(direct.gaps, via_spec.gaps)

    def test_content_change_changes_spec(self, tmp_path):
        path = tmp_path / "k6_a.trc"
        path.write_text("0x1000 P_MEM_RD 5\n")
        first = trace_workload_spec(path)
        path.write_text("0x1000 P_MEM_RD 6\n")
        assert trace_workload_spec(path) != first

    def test_digest_mismatch_rejected(self, tmp_path):
        path = tmp_path / "k6_b.trc"
        path.write_text("0x1000 P_MEM_RD 5\n")
        spec = trace_workload_spec(path)
        path.write_text("0x1000 P_MEM_RD 6\n")
        with pytest.raises(ValueError, match="digest"):
            workload_from_spec(spec)

    @pytest.mark.parametrize(
        "spec",
        ["trace:k6", "trace:k6:abcd:", "trace:pin:abcd:/tmp/x", "trace:"],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_trace_spec(spec)

    def test_non_spec_names(self):
        assert not is_trace_spec("mcf_r")
        assert not is_trace_spec("mix3")
