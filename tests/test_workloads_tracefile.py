"""Tests for trace file I/O (npz round-trip and CSV interchange)."""

import numpy as np
import pytest

from repro.workloads.tracefile import (
    export_csv,
    import_csv,
    load_workload,
    save_workload,
)
from repro.workloads.trace import CoreTrace, Workload


@pytest.fixture
def workload():
    cores = []
    for core_id in range(3):
        n = 10 + core_id
        cores.append(
            CoreTrace(
                gaps=np.linspace(0, 5, n),
                addresses=np.arange(n, dtype=np.int64) + core_id * 1000,
                is_write=np.array([i % 3 == 0 for i in range(n)]),
                pcs=np.arange(n, dtype=np.int64) * 4 + 0x400000,
                instructions=n * 100,
            )
        )
    return Workload("roundtrip", cores)


class TestNpzRoundTrip:
    def test_identity(self, workload, tmp_path):
        path = tmp_path / "w.npz"
        save_workload(workload, path)
        loaded = load_workload(path)
        assert loaded.name == workload.name
        assert loaded.num_cores == workload.num_cores
        for a, b in zip(loaded.cores, workload.cores):
            assert np.array_equal(a.gaps, b.gaps)
            assert np.array_equal(a.addresses, b.addresses)
            assert np.array_equal(a.is_write, b.is_write)
            assert np.array_equal(a.pcs, b.pcs)
            assert a.instructions == b.instructions

    def test_aggregate_stats_preserved(self, workload, tmp_path):
        path = tmp_path / "w.npz"
        save_workload(workload, path)
        loaded = load_workload(path)
        assert loaded.mpki == workload.mpki
        assert loaded.footprint_lines() == workload.footprint_lines()


class TestCsvInterchange:
    def test_roundtrip(self, workload, tmp_path):
        path = tmp_path / "w.csv"
        export_csv(workload, path)
        loaded = import_csv(path, name="roundtrip")
        assert loaded.num_cores == workload.num_cores
        for a, b in zip(loaded.cores, workload.cores):
            assert np.array_equal(a.addresses, b.addresses)
            assert np.array_equal(a.is_write, b.is_write)
            assert np.allclose(a.gaps, b.gaps)

    def test_header_written(self, workload, tmp_path):
        path = tmp_path / "w.csv"
        export_csv(workload, path)
        first = path.read_text().splitlines()[0]
        assert first == "core,gap,address,write,pc"

    def test_hand_written_csv(self, tmp_path):
        path = tmp_path / "hand.csv"
        path.write_text(
            "core,gap,address,write,pc\n"
            "0,5.0,100,0,1024\n"
            "0,0.0,101,1,0\n"
            "1,2.5,200,0,2048\n"
        )
        workload = import_csv(path, instructions_per_core=500)
        assert workload.num_cores == 2
        assert workload.cores[0].num_writes == 1
        assert workload.cores[0].instructions == 500

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("core,address\n0,1\n")
        with pytest.raises(ValueError, match="columns"):
            import_csv(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("core,gap,address,write,pc\n")
        with pytest.raises(ValueError, match="no requests"):
            import_csv(path)

    def test_imported_workload_simulates(self, tmp_path):
        from repro.sim.config import SystemConfig
        from repro.sim.runner import run_design
        from repro.units import MB

        path = tmp_path / "sim.csv"
        rows = ["core,gap,address,write,pc"]
        for core in range(2):
            for i in range(30):
                rows.append(f"{core},10.0,{core * 100000 + i % 5},0,{0x400 + i % 3 * 4}")
        path.write_text("\n".join(rows) + "\n")
        workload = import_csv(path)
        config = SystemConfig(num_cores=2, cache_size_bytes=256 * MB, capacity_scale=4096)
        result = run_design("alloy-map-i", workload, config)
        assert result.cycles > 0
        assert result.read_hit_rate > 0.5  # 5-line loop fits trivially
