"""Integration tests: the paper's headline shapes must hold end-to-end.

These run real (reduced-length) simulations, so they are the slowest tests
in the suite. Sweeps are shared through module-scoped fixtures.
"""

import pytest

from repro.sim.config import SystemConfig
from repro.sim.runner import geometric_mean, speedup
from repro.units import MB

READS = 2500
BENCHMARKS = ("mcf_r", "omnetpp_r", "sphinx_r")


@pytest.fixture(scope="module")
def sweep():
    designs = (
        "lh-cache",
        "sram-tag",
        "alloy-nopred",
        "alloy-missmap",
        "alloy-sam",
        "alloy-pam",
        "alloy-map-g",
        "alloy-map-i",
        "alloy-perfect",
        "ideal-lo",
        "ideal-lo-notag",
    )
    config = SystemConfig()
    out = {}
    for benchmark in BENCHMARKS:
        for design in designs:
            out[(design, benchmark)] = speedup(
                design, benchmark, config, reads_per_core=READS
            )
    return out


def gmean_of(sweep, design):
    return geometric_mean([sweep[(design, b)][0] for b in BENCHMARKS])


class TestHeadlineOrdering:
    def test_all_caches_beat_baseline(self, sweep):
        for design in ("sram-tag", "alloy-map-i", "ideal-lo"):
            assert gmean_of(sweep, design) > 1.0, design

    def test_alloy_beats_lh_cache(self, sweep):
        """The central claim: the latency-optimized design wins big."""
        assert gmean_of(sweep, "alloy-map-i") > gmean_of(sweep, "lh-cache")

    def test_alloy_beats_impractical_sram_tags(self, sweep):
        assert gmean_of(sweep, "alloy-map-i") > gmean_of(sweep, "sram-tag")

    def test_ideal_lo_is_the_upper_bound(self, sweep):
        ideal = gmean_of(sweep, "ideal-lo")
        for design in ("lh-cache", "sram-tag", "alloy-map-i", "alloy-perfect"):
            assert ideal >= gmean_of(sweep, design) * 0.98, design

    def test_notag_bound_at_least_ideal_lo(self, sweep):
        assert gmean_of(sweep, "ideal-lo-notag") >= gmean_of(sweep, "ideal-lo") * 0.98


class TestHitLatencyShape:
    def test_latency_ordering_alloy_sram_lh(self, sweep):
        """Figure 10: Alloy ~43 < SRAM-Tag ~67 < LH-Cache ~107 cycles."""
        for benchmark in BENCHMARKS:
            lh = sweep[("lh-cache", benchmark)][1].avg_hit_latency
            sram = sweep[("sram-tag", benchmark)][1].avg_hit_latency
            alloy = sweep[("alloy-map-i", benchmark)][1].avg_hit_latency
            assert alloy < sram < lh

    def test_lh_hit_latency_near_paper(self, sweep):
        lats = [sweep[("lh-cache", b)][1].avg_hit_latency for b in BENCHMARKS]
        assert 90 <= sum(lats) / len(lats) <= 135  # paper: 107

    def test_alloy_cuts_lh_latency_by_half_or_more(self, sweep):
        for benchmark in BENCHMARKS:
            lh = sweep[("lh-cache", benchmark)][1].avg_hit_latency
            alloy = sweep[("alloy-map-i", benchmark)][1].avg_hit_latency
            assert alloy < 0.55 * lh


class TestHitRateShape:
    def test_lh_29way_beats_direct_mapped_alloy(self, sweep):
        """Table 6: associativity buys hit rate; latency buys performance."""
        for benchmark in BENCHMARKS:
            lh = sweep[("lh-cache", benchmark)][1].read_hit_rate
            alloy = sweep[("alloy-map-i", benchmark)][1].read_hit_rate
            assert lh >= alloy

    def test_associativity_gap_shrinks_with_capacity(self):
        gaps = []
        for size in (256 * MB, 1024 * MB):
            config = SystemConfig().with_cache_size(size)
            lh = speedup("lh-cache", "mcf_r", config, reads_per_core=READS)[1]
            alloy = speedup("alloy-map-i", "mcf_r", config, reads_per_core=READS)[1]
            gaps.append(lh.read_hit_rate - alloy.read_hit_rate)
        assert gaps[1] <= gaps[0] + 0.02

    def test_hit_rate_grows_with_capacity(self):
        rates = []
        for size in (64 * MB, 1024 * MB):
            config = SystemConfig().with_cache_size(size)
            rates.append(
                speedup("alloy-map-i", "mcf_r", config, reads_per_core=READS)[
                    1
                ].read_hit_rate
            )
        assert rates[1] > rates[0]


class TestPredictorShape:
    def test_missmap_worse_than_no_prediction(self, sweep):
        """Figure 6: the MissMap's PSL on every access negates its benefit."""
        assert gmean_of(sweep, "alloy-missmap") < gmean_of(sweep, "alloy-nopred")

    def test_perfect_bounds_practical_predictors(self, sweep):
        perfect = gmean_of(sweep, "alloy-perfect")
        for design in ("alloy-sam", "alloy-pam", "alloy-map-g", "alloy-map-i"):
            assert gmean_of(sweep, design) <= perfect * 1.02, design

    def test_map_i_close_to_perfect(self, sweep):
        """Paper: MAP-I within ~2% of the perfect predictor."""
        assert gmean_of(sweep, "alloy-map-i") > gmean_of(sweep, "alloy-perfect") * 0.92

    def test_map_i_beats_sam(self, sweep):
        assert gmean_of(sweep, "alloy-map-i") > gmean_of(sweep, "alloy-sam")

    def test_pam_doubles_memory_traffic(self, sweep):
        """Table 5: PAM sends ~every L3 miss to memory."""
        for benchmark in BENCHMARKS:
            pam = sweep[("alloy-pam", benchmark)][1]
            perfect = sweep[("alloy-perfect", benchmark)][1]
            assert pam.memory_reads > 1.5 * perfect.memory_reads

    def test_map_i_wastes_little_bandwidth(self, sweep):
        for benchmark in BENCHMARKS:
            map_i = sweep[("alloy-map-i", benchmark)][1]
            pam = sweep[("alloy-pam", benchmark)][1]
            assert map_i.wasted_memory_reads < 0.5 * pam.wasted_memory_reads

    def test_map_i_accuracy_beats_statics(self, sweep):
        for benchmark in BENCHMARKS:
            acc_i = sweep[("alloy-map-i", benchmark)][1].predictor_accuracy()
            acc_sam = sweep[("alloy-sam", benchmark)][1].predictor_accuracy()
            acc_pam = sweep[("alloy-pam", benchmark)][1].predictor_accuracy()
            assert acc_i > max(acc_sam, acc_pam)


class TestRowBufferShape:
    def test_alloy_gets_row_hits_lh_does_not(self, sweep):
        """Direct-mapped layouts put 28 consecutive sets per row; the
        set-per-row LH layout gets essentially none (Section 2.7)."""
        for benchmark in BENCHMARKS:
            alloy = sweep[("alloy-map-i", benchmark)][1].stacked_row_hit_rate
            lh = sweep[("lh-cache", benchmark)][1].stacked_row_hit_rate
            assert alloy > 0.2
            # LH row hits come only from compound access data reads (one
            # guaranteed hit per hit access) and fills.
            assert lh < 0.85


class TestLibquantum:
    """The paper's cautionary workload: pure streaming with high off-chip
    row-buffer locality. Tag-serialized designs barely help or hurt."""

    @pytest.fixture(scope="class")
    def libq(self):
        config = SystemConfig()
        return {
            d: speedup(d, "libquantum_r", config, reads_per_core=READS)
            for d in ("lh-cache", "sram-tag", "alloy-map-i")
        }

    def test_lh_near_or_below_breakeven(self, libq):
        assert libq["lh-cache"][0] < 1.10

    def test_alloy_clearly_helps(self, libq):
        # With full-length traces alloy reaches ~1.3x here; the reduced
        # traces used in tests still show a clear improvement.
        assert libq["alloy-map-i"][0] > 1.02

    def test_alloy_beats_both(self, libq):
        assert libq["alloy-map-i"][0] > libq["lh-cache"][0]
        assert libq["alloy-map-i"][0] > libq["sram-tag"][0]
