"""Tests for the Alloy + SRAM victim buffer extension design."""

import pytest

from repro.cache.missmap import MissMap
from repro.dram.device import DramDevice
from repro.dramcache.alloy_victim import VICTIM_HIT_CYCLES, AlloyVictimDesign
from repro.sim.config import SystemConfig
from repro.units import MB


class FakeScheduler:
    def __init__(self):
        self.pending = []

    def __call__(self, when, fn):
        self.pending.append((when, fn))

    def drain(self):
        while self.pending:
            self.pending.sort(key=lambda item: item[0])
            when, fn = self.pending.pop(0)
            fn(when)


@pytest.fixture
def env():
    config = SystemConfig(cache_size_bytes=256 * MB, capacity_scale=4096)
    stacked = DramDevice(config.stacked, name="stacked")
    memory = DramDevice(config.offchip, name="memory")
    sched = FakeScheduler()
    design = AlloyVictimDesign(
        config, stacked, memory, sched, predictor=None, victim_entries=4
    )
    return design, sched, stacked, memory


def read(design, line, t=0.0):
    return design.access(t, line, False, 0x400, 0)


class TestVictimBuffer:
    def test_rejects_missmap(self):
        config = SystemConfig(capacity_scale=4096)
        stacked = DramDevice(config.stacked)
        memory = DramDevice(config.offchip)
        with pytest.raises(ValueError):
            AlloyVictimDesign(config, stacked, memory, lambda w, f: None,
                              predictor=MissMap())

    def test_name_and_overhead(self, env):
        design, *_ = env
        assert design.name.endswith("+victim4")
        assert design.sram_overhead_bytes() == 4 * 72

    def test_evicted_line_lands_in_buffer(self, env):
        design, sched, *_ = env
        conflict = design.cache.num_sets
        design.warm(0, False, 0, 0)
        read(design, conflict)  # evicts line 0 from the DM array
        sched.drain()
        assert not design.cache.probe(0)
        assert design.victims.probe(0)

    def test_victim_hit_is_sram_fast(self, env):
        design, sched, *_ = env
        conflict = design.cache.num_sets
        design.warm(0, False, 0, 0)
        read(design, conflict)
        sched.drain()
        outcome = read(design, 0, t=10_000.0)
        assert outcome.cache_hit
        assert outcome.done - 10_000.0 == VICTIM_HIT_CYCLES
        assert design.stats.counter("victim_hits").value == 1

    def test_swap_back_restores_dm_residency(self, env):
        design, sched, *_ = env
        conflict = design.cache.num_sets
        design.warm(0, False, 0, 0)
        read(design, conflict)
        sched.drain()
        read(design, 0, t=10_000.0)  # victim hit swaps 0 back in
        sched.drain()
        assert design.cache.probe(0)
        assert design.victims.probe(conflict)  # displaced the other way

    def test_ping_pong_pair_never_misses_after_warm(self, env):
        design, sched, *_ = env
        a, b = 0, design.cache.num_sets
        design.warm(a, False, 0, 0)
        design.warm(b, False, 0, 0)
        misses_before = design.stats.counter("read_misses").value
        t = 10_000.0
        for line in (a, b, a, b, a, b):
            outcome = read(design, line, t=t)
            sched.drain()
            assert outcome.cache_hit
            t += 1000.0
        assert design.stats.counter("read_misses").value == misses_before

    def test_dirty_overflow_written_back(self, env):
        design, sched, *_ = env
        sets = design.cache.num_sets
        design.warm(0, False, 0, 0)
        design.access(0.0, 0, True, 0, 0)  # dirty line 0
        sched.drain()
        # Push five distinct victims through a 4-entry buffer.
        t = 1000.0
        for k in range(1, 7):
            design.access(t, k * sets, False, 0, 0)
            sched.drain()
            t += 1000.0
        assert design.stats.counter("memory_writes").value >= 1

    def test_warm_path_consistent_with_timed(self, env):
        design, sched, *_ = env
        conflict = design.cache.num_sets
        design.warm(0, False, 0, 0)
        design.warm(conflict, False, 0, 0)  # evicts 0 into buffer
        design.warm(0, False, 0, 0)  # victim hit in warmup, swaps back
        assert design.cache.probe(0)
        assert design.victims.probe(conflict)

    def test_victim_hit_rate_metric(self, env):
        design, sched, *_ = env
        conflict = design.cache.num_sets
        design.warm(0, False, 0, 0)
        read(design, conflict)
        sched.drain()
        read(design, 0, t=10_000.0)
        assert 0 < design.victim_hit_rate <= 1


class TestFactoryVariants:
    def test_victim_designs_build_and_run(self):
        from repro.sim.runner import run_benchmark

        config = SystemConfig(capacity_scale=2048)
        result = run_benchmark("alloy-victim16", "sphinx_r", config, reads_per_core=300)
        assert result.cycles > 0
        assert result.design.endswith("+victim16")

    def test_victim_never_hurts_hit_rate(self):
        from repro.sim.runner import run_benchmark

        config = SystemConfig(capacity_scale=1024)
        base = run_benchmark("alloy-map-i", "mcf_r", config, reads_per_core=800)
        victim = run_benchmark("alloy-victim64", "mcf_r", config, reads_per_core=800)
        assert victim.read_hit_rate >= base.read_hit_rate - 0.01
