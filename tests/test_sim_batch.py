"""Tests for the batch simulation engine (``repro.sim.batch``).

The engine's entire contract is *bit-exactness*: for every configuration
inside its envelope, ``SystemConfig(engine="batch")`` must produce a
:class:`~repro.sim.results.SimResult` field-identical to the interpreter's,
while configurations outside the envelope must fall back to the interpreter
(``System.engine_used == "interp"``) rather than approximate. These tests
pin both halves, plus the engine-selection plumbing (config field,
``REPRO_ENGINE``) and the bench/sweep integration.
"""

import dataclasses

import pytest

from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.spec import build_workload

#: Every design the batch engine has a kernel for.
BATCH_DESIGNS = (
    "no-cache",
    "sram-tag",
    "sram-tag-1way",
    "lh-cache",
    "lh-cache-rand",
    "lh-cache-1way",
    "ideal-lo",
    "ideal-lo-notag",
    "alloy-nopred",
    "alloy-missmap",
    "alloy-sam",
    "alloy-pam",
    "alloy-map-g",
    "alloy-map-i",
    "alloy-perfect",
    "alloy-burst8",
    "alloy-2way",
    "alloy-4way",
    "alloy-victim16",
    "alloy-victim64",
)

#: Designs the engine must decline (no kernel: the L3-filter design is
#: the only factory design left outside the envelope).
FALLBACK_DESIGNS = ("perfect-l3",)


def _config(**overrides):
    base = dict(num_cores=2, capacity_scale=4096)
    base.update(overrides)
    return SystemConfig(**base)


def _workload(config, benchmark="mcf_r", reads=250, seed=7):
    return build_workload(
        benchmark,
        num_cores=config.num_cores,
        reads_per_core=reads,
        capacity_scale=config.capacity_scale,
        seed=seed,
    )


def _pair(design, config, benchmark="mcf_r", reads=250):
    """Run one cell through both engines; return (interp, batch) systems
    and their results."""
    workload = _workload(config, benchmark=benchmark, reads=reads)
    interp = System(
        dataclasses.replace(config, engine="interp"), design, workload
    )
    batch = System(
        dataclasses.replace(config, engine="batch"), design, workload
    )
    return interp, interp.run(), batch, batch.run()


def assert_identical(got, want):
    g = dataclasses.asdict(got)
    w = dataclasses.asdict(want)
    diff = {k: (g[k], w[k]) for k in g if g[k] != w[k]}
    assert not diff, f"batch diverged from interpreter: {diff}"


class TestBitExactness:
    @pytest.mark.parametrize("design", BATCH_DESIGNS)
    def test_every_kernel_matches_interpreter(self, design):
        interp, want, batch, got = _pair(design, _config())
        assert interp.engine_used == "interp"
        assert batch.engine_used == "batch"
        assert_identical(got, want)

    @pytest.mark.parametrize("design", ["lh-cache", "sram-tag", "alloy-map-i"])
    def test_matches_without_percentile_tracking(self, design):
        _, want, batch, got = _pair(
            design, _config(track_percentiles=False)
        )
        assert batch.engine_used == "batch"
        assert_identical(got, want)
        assert got.hit_latency_p95 is None or got.hit_latency_p95 == 0.0

    @pytest.mark.parametrize("design", ["lh-cache", "sram-tag", "no-cache"])
    def test_matches_under_closed_page_policies(self, design):
        _, want, batch, got = _pair(
            design,
            _config(
                stacked_page_policy="closed", offchip_page_policy="closed"
            ),
        )
        assert batch.engine_used == "batch"
        assert_identical(got, want)

    def test_matches_on_write_heavy_benchmark(self):
        _, want, batch, got = _pair(
            "lh-cache", _config(), benchmark="milc_r"
        )
        assert batch.engine_used == "batch"
        assert_identical(got, want)

    @pytest.mark.parametrize(
        "design", ["alloy-map-i", "lh-cache", "alloy-victim16", "alloy-2way"]
    )
    @pytest.mark.parametrize("mshrs", [2, 4])
    def test_matches_with_mlp_cores(self, design, mshrs):
        _, want, batch, got = _pair(design, _config(mshrs_per_core=mshrs))
        assert batch.engine_used == "batch"
        assert_identical(got, want)

    def test_victim_buffer_matches_on_write_heavy_benchmark(self):
        _, want, batch, got = _pair(
            "alloy-victim64", _config(), benchmark="milc_r"
        )
        assert batch.engine_used == "batch"
        assert_identical(got, want)


class TestFallback:
    @pytest.mark.parametrize("design", FALLBACK_DESIGNS)
    def test_unkerneled_designs_fall_back(self, design):
        config = _config(engine="batch")
        system = System(config, design, _workload(config))
        system.run()
        assert system.engine_used == "interp"

    def test_non_lru_multiway_alloy_falls_back(self):
        # The multi-way kernels inline LRU transitions specifically; a
        # replaced policy must make the engine decline, not approximate.
        from repro.cache.replacement import RandomPolicy
        from repro.sim import batch

        config = _config(engine="batch")
        system = System(config, "alloy-2way", _workload(config))
        system.design.cache._store.policy = RandomPolicy()
        assert batch.run(system) is None

    def test_verify_runs_fall_back(self):
        config = _config(engine="batch", verify=True)
        system = System(config, "alloy-map-i", _workload(config))
        system.run()
        assert system.engine_used == "interp"

    def test_fallback_is_still_bit_exact(self):
        config = _config()
        workload = _workload(config)
        want = System(
            dataclasses.replace(config, engine="interp"), "alloy-2way", workload
        ).run()
        got = System(
            dataclasses.replace(config, engine="batch"), "alloy-2way", workload
        ).run()
        assert_identical(got, want)


class TestEngineSelection:
    def test_invalid_explicit_engine_raises(self):
        config = _config(engine="vectorized")
        with pytest.raises(ValueError, match="unknown engine"):
            System(config, "no-cache", _workload(config)).run()

    def test_env_selects_batch(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "batch")
        config = _config()
        system = System(config, "no-cache", _workload(config))
        system.run()
        assert system.engine_used == "batch"

    def test_explicit_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "batch")
        config = _config(engine="interp")
        system = System(config, "no-cache", _workload(config))
        system.run()
        assert system.engine_used == "interp"

    def test_auto_selects_batch_when_eligible(self):
        config = _config(engine="auto")
        system = System(config, "alloy-victim16", _workload(config))
        system.run()
        assert system.engine_used == "batch"

    def test_auto_falls_back_outside_envelope(self):
        config = _config(engine="auto")
        system = System(config, "perfect-l3", _workload(config))
        system.run()
        assert system.engine_used == "interp"

    def test_env_auto_accepted(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "auto")
        config = _config()
        system = System(config, "no-cache", _workload(config))
        system.run()
        assert system.engine_used == "batch"

    def test_invalid_env_warns_and_uses_interp(self, monkeypatch, capsys):
        import repro.sim.system as system_mod

        monkeypatch.setattr(system_mod, "_warned_engines", set())
        monkeypatch.setenv("REPRO_ENGINE", "warp")
        config = _config()
        system = System(config, "no-cache", _workload(config))
        system.run()
        assert system.engine_used == "interp"
        err = capsys.readouterr().err
        assert "ignoring invalid REPRO_ENGINE='warp'" in err

    def test_invalid_env_warning_dedupes_per_process(
        self, monkeypatch, capsys
    ):
        import repro.sim.system as system_mod

        monkeypatch.setattr(system_mod, "_warned_engines", set())
        monkeypatch.setenv("REPRO_ENGINE", "turbo")
        config = _config()
        workload = _workload(config)
        for _ in range(3):
            System(config, "no-cache", workload).run()
        err = capsys.readouterr().err
        assert err.count("ignoring invalid REPRO_ENGINE='turbo'") == 1

    def test_env_parity_with_interpreter(self, monkeypatch):
        config = _config()
        workload = _workload(config)
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        want = System(config, "sram-tag", workload).run()
        monkeypatch.setenv("REPRO_ENGINE", "batch")
        system = System(config, "sram-tag", workload)
        got = system.run()
        assert system.engine_used == "batch"
        assert_identical(got, want)


class TestIntegration:
    def test_bench_cell_id_ignores_engine(self):
        from repro.perf.bench import BenchCell

        a = BenchCell("lh-cache", "mcf_r")
        b = BenchCell("lh-cache", "mcf_r", engine="batch")
        assert a.cell_id == b.cell_id

    def test_time_cell_reports_engine_used(self):
        from repro.perf.bench import BenchCell, time_cell

        timing = time_cell(
            BenchCell(
                "no-cache", "mcf_r", reads_per_core=60, engine="batch"
            ),
            repeats=1,
            discard=0,
        )
        assert timing.engine_used == "batch"
        payload_engine = timing.cell.engine
        assert payload_engine == "batch"

    def test_sweep_cache_key_ignores_engine(self):
        from repro.sim.parallel import cell_key

        base = _config()
        batch = dataclasses.replace(base, engine="batch")
        args = ("lh-cache", "mcf_r")
        assert cell_key(*args, base, 250, 0.25, 7) == cell_key(
            *args, batch, 250, 0.25, 7
        )

    def test_fuzzer_covers_batch_engine(self):
        from repro.verify.fuzzer import fuzz_system_pair

        assert fuzz_system_pair(0, reads_per_core=120) == []

    def test_execute_cell_defaults_to_auto_and_reports_engine(
        self, monkeypatch
    ):
        from repro.sim.parallel import SweepCell, _execute_cell

        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        cell = SweepCell(
            design="alloy-map-i",
            benchmark="mcf_r",
            config=_config(),
            reads_per_core=120,
            seed=7,
        )
        workload = _workload(_config(), reads=120)
        _, telemetry = _execute_cell(cell, workload=workload)
        assert telemetry["engine_used"] == "batch"

    def test_execute_cell_respects_env_pin(self, monkeypatch):
        from repro.sim.parallel import SweepCell, _execute_cell

        monkeypatch.setenv("REPRO_ENGINE", "interp")
        cell = SweepCell(
            design="alloy-map-i",
            benchmark="mcf_r",
            config=_config(),
            reads_per_core=120,
            seed=7,
        )
        workload = _workload(_config(), reads=120)
        _, telemetry = _execute_cell(cell, workload=workload)
        assert telemetry["engine_used"] == "interp"

    def test_sweep_report_counts_engines(self, monkeypatch):
        from repro.sim.parallel import run_sweep

        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        config = _config()
        from repro.sim.parallel import SweepCell, SweepReport

        cells = [
            SweepCell(
                design=d,
                benchmark="mcf_r",
                config=config,
                reads_per_core=80,
                seed=7,
            )
            for d in ("alloy-map-i", "perfect-l3")
        ]
        report = run_sweep(cells, use_cache=False)
        assert isinstance(report, SweepReport)
        counts = report.engine_counts
        assert counts.get("batch") == 1
        assert counts.get("interp") == 1
        assert "-- engines:" in report.render()


class TestNoWorkloadMutation:
    """Kernels must never write into workload arrays: on the single-core
    path ``_flatten`` hands back the trace's own (possibly arena/shared-
    memory-backed) numpy arrays without a copy."""

    @pytest.mark.parametrize(
        "design", ["alloy-map-i", "lh-cache", "alloy-victim16", "ideal-lo"]
    )
    def test_single_core_arrays_unchanged(self, design):
        import numpy as np

        config = _config(num_cores=1, mshrs_per_core=4)
        workload = _workload(config)
        trace = workload.cores[0]
        before = {
            "addresses": trace.addresses.copy(),
            "is_write": trace.is_write.copy(),
            "pcs": trace.pcs.copy(),
            "gaps": trace.gaps.copy(),
        }
        system = System(
            dataclasses.replace(config, engine="batch"), design, workload
        )
        system.run()
        assert system.engine_used == "batch"
        for name, want in before.items():
            got = getattr(trace, name)
            assert np.array_equal(got, want), f"kernel mutated trace.{name}"
