"""Tests for the bounded-MLP core model (MSHRs + load dependence)."""

import numpy as np
import pytest

from repro.sim.config import SystemConfig
from repro.sim.core_model import Core
from repro.sim.system import System
from repro.units import MB
from repro.workloads.trace import CoreTrace, Workload


def config_with(mshrs):
    return SystemConfig(
        num_cores=1, cache_size_bytes=256 * MB, capacity_scale=4096,
        mshrs_per_core=mshrs,
    )


def independent_reads(n=8, gap=5.0, spread=40_000):
    """n reads to distinct memory rows: fully overlappable."""
    return Workload(
        "ind",
        [
            CoreTrace(
                gaps=np.full(n, gap),
                addresses=np.arange(n, dtype=np.int64) * spread,
                is_write=np.zeros(n, dtype=bool),
                pcs=np.full(n, 0x400, dtype=np.int64),
                instructions=n * 10,
            )
        ],
    )


def dependent_reads(n=8, gap=5.0, spread=40_000):
    trace = independent_reads(n, gap, spread).cores[0]
    return Workload(
        "dep",
        [
            CoreTrace(
                gaps=trace.gaps,
                addresses=trace.addresses,
                is_write=trace.is_write,
                pcs=trace.pcs,
                instructions=trace.instructions,
                is_dependent=np.ones(n, dtype=bool),
            )
        ],
    )


class TestCoreMshrHelpers:
    def make_core(self):
        return Core(0, independent_reads().cores[0])

    def test_retire_completed(self):
        core = self.make_core()
        core.outstanding = [10.0, 20.0, 30.0]
        core.retire_completed(15.0)
        assert core.outstanding == [20.0, 30.0]

    def test_mshr_full(self):
        core = self.make_core()
        core.outstanding = [10.0, 20.0]
        assert core.mshr_full(2)
        assert not core.mshr_full(3)

    def test_earliest_completion(self):
        core = self.make_core()
        core.outstanding = [30.0, 10.0]
        assert core.earliest_completion() == 10.0


class TestMlpExecution:
    def test_mlp_overlaps_independent_misses(self):
        wl = independent_reads()
        blocking = System(config_with(1), "no-cache", wl, warmup_fraction=0.0).run()
        mlp = System(config_with(8), "no-cache", wl, warmup_fraction=0.0).run()
        # Eight overlappable misses finish far sooner than serialized ones.
        assert mlp.cycles < 0.5 * blocking.cycles

    def test_mshr_limit_caps_overlap(self):
        wl = independent_reads(n=12)
        two = System(config_with(2), "no-cache", wl, warmup_fraction=0.0).run()
        eight = System(config_with(8), "no-cache", wl, warmup_fraction=0.0).run()
        assert eight.cycles <= two.cycles

    def test_dependent_chain_cannot_overlap(self):
        ind = System(
            config_with(8), "no-cache", independent_reads(), warmup_fraction=0.0
        ).run()
        dep = System(
            config_with(8), "no-cache", dependent_reads(), warmup_fraction=0.0
        ).run()
        # The dependent chain serializes despite free MSHRs.
        assert dep.cycles > 1.5 * ind.cycles

    def test_dependent_equals_blocking(self):
        blocking = System(
            config_with(1), "no-cache", dependent_reads(), warmup_fraction=0.0
        ).run()
        dep_mlp = System(
            config_with(8), "no-cache", dependent_reads(), warmup_fraction=0.0
        ).run()
        # A fully dependent chain gains nothing from MSHRs; timing differs
        # only in where the compute gap lands (overlapped vs appended).
        assert dep_mlp.cycles <= blocking.cycles
        assert dep_mlp.cycles > 0.8 * blocking.cycles

    def test_mshrs_one_matches_legacy_semantics(self):
        """mshrs=1 must preserve the original blocking-core timing."""
        wl = independent_reads(n=3, gap=10.0)
        result = System(config_with(1), "no-cache", wl, warmup_fraction=0.0).run()
        # Each read: gap 10 + L3 24 + memory 88 (type Y rows, all distinct).
        assert result.cycles == pytest.approx(3 * (10 + 24 + 88))

    def test_all_records_processed_under_mlp(self):
        wl = independent_reads(n=20)
        system = System(config_with(4), "no-cache", wl, warmup_fraction=0.0)
        system.run()
        assert system.design.stats.counter("read_misses").value == 20
        assert not system._heap
