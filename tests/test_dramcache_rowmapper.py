"""Tests for the design-side RowMapper (cache row -> device coordinates)."""

import pytest

from repro.dram.device import DramDevice
from repro.dram.mapping import RowLocation
from repro.dram.timings import STACKED_DRAM
from repro.dramcache.base import RowMapper


@pytest.fixture
def mapper():
    return RowMapper(DramDevice(STACKED_DRAM))  # 4 channels x 8 banks


class TestRowMapper:
    def test_first_rows_interleave_channels(self, mapper):
        channels = [mapper.locate(r).channel for r in range(4)]
        assert channels == [0, 1, 2, 3]

    def test_banks_after_channels(self, mapper):
        assert mapper.locate(0).bank == 0
        assert mapper.locate(4).bank == 1  # wrapped channels -> next bank

    def test_row_after_all_banks(self, mapper):
        spread = 4 * 8
        loc = mapper.locate(spread)
        assert loc == RowLocation(channel=0, bank=0, row=1)

    def test_distinct_rows_distinct_locations(self, mapper):
        locations = {mapper.locate(r) for r in range(512)}
        assert len(locations) == 512

    def test_consecutive_rows_hit_different_banks(self, mapper):
        """Adjacent cache rows must not serialize on one bank — this is the
        bank-level parallelism the designs rely on under load."""
        a = mapper.locate(10)
        b = mapper.locate(11)
        assert (a.channel, a.bank) != (b.channel, b.bank)

    def test_uniform_bank_coverage(self, mapper):
        from collections import Counter

        usage = Counter(
            (mapper.locate(r).channel, mapper.locate(r).bank) for r in range(320)
        )
        assert len(usage) == 32
        assert max(usage.values()) == min(usage.values())
