"""Tests for the functional Alloy Cache."""

import pytest

from repro.core.alloy import AlloyCache
from repro.units import MB


@pytest.fixture
def alloy():
    return AlloyCache(capacity_bytes=1 * MB)


class TestGeometryIntegration:
    def test_sets_match_geometry(self, alloy):
        assert alloy.num_sets == alloy.geometry.num_sets
        assert alloy.capacity_lines == alloy.num_sets

    def test_row_of_consecutive_lines(self, alloy):
        # Lines mapping to consecutive sets live in the same stacked row.
        assert alloy.row_of(0) == alloy.row_of(27)
        assert alloy.row_of(27) != alloy.row_of(28)


class TestFunctional:
    def test_miss_fill_hit(self, alloy):
        assert not alloy.lookup(100)
        alloy.fill(100)
        assert alloy.lookup(100)
        assert alloy.probe(100)

    def test_conflict_eviction(self, alloy):
        alloy.fill(0)
        evicted = alloy.fill(alloy.num_sets)  # same set
        assert evicted.valid and evicted.line_address == 0

    def test_dirty_tracking(self, alloy):
        alloy.fill(5)
        alloy.lookup(5, is_write=True)
        assert alloy.is_dirty(5)
        assert alloy.invalidate(5)
        assert not alloy.probe(5)

    def test_hit_rate_and_occupancy(self, alloy):
        alloy.fill(1)
        alloy.lookup(1)
        alloy.lookup(2)
        assert alloy.hit_rate == pytest.approx(0.5)
        assert 0 < alloy.occupancy() < 1

    def test_resident_lines(self, alloy):
        alloy.fill(3)
        assert alloy.resident_lines() == [3]


class TestTwoWay:
    def test_two_way_absorbs_one_conflict(self):
        two = AlloyCache(1 * MB, ways=2)
        line_a, line_b = 0, two.num_sets  # same set
        two.fill(line_a)
        evicted = two.fill(line_b)
        assert not evicted.valid
        assert two.probe(line_a) and two.probe(line_b)

    def test_two_way_lru_eviction(self):
        two = AlloyCache(1 * MB, ways=2)
        s = two.num_sets
        two.fill(0)
        two.fill(s)
        two.lookup(0)  # promote
        evicted = two.fill(2 * s)
        assert evicted.line_address == s

    def test_hit_rate_no_worse_than_direct_mapped(self):
        """On a conflict-heavy stream, 2 ways never hit less than 1 way."""
        one = AlloyCache(1 * MB, ways=1)
        two = AlloyCache(1 * MB, ways=2)
        stride = one.num_sets
        stream = [i % 3 * stride for i in range(300)]
        for cache in (one, two):
            for line in stream:
                if not cache.lookup(line):
                    cache.fill(line)
        assert two.hit_rate >= one.hit_rate
