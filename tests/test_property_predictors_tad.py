"""Property-based tests for predictors and TAD geometry."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predictors import (
    MAC_MAX,
    MapGPredictor,
    MapIPredictor,
    folded_xor,
)
from repro.core.tad import AlloyGeometry
from repro.units import ROW_BUFFER_SIZE, STACKED_BUS_BYTES, TAD_SIZE


class TestFoldedXorProperties:
    @given(value=st.integers(0, 2**64 - 1), bits=st.integers(1, 16))
    @settings(max_examples=200, deadline=None)
    def test_output_in_range(self, value, bits):
        assert 0 <= folded_xor(value, bits) < (1 << bits)

    @given(value=st.integers(0, 2**64 - 1))
    @settings(max_examples=100, deadline=None)
    def test_deterministic(self, value):
        assert folded_xor(value, 8) == folded_xor(value, 8)

    @given(value=st.integers(0, 2**16 - 1))
    @settings(max_examples=100, deadline=None)
    def test_wide_output_preserves_small_values(self, value):
        assert folded_xor(value, 16) == value


class TestCounterProperties:
    @given(
        outcomes=st.lists(st.booleans(), min_size=1, max_size=500),
        cores=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_mapg_counter_always_in_range(self, outcomes, cores):
        p = MapGPredictor(num_cores=cores)
        for i, went in enumerate(outcomes):
            core = i % cores
            p.predict(core, 0)
            p.update(core, 0, went)
            assert 0 <= p.counter(core) <= MAC_MAX

    @given(
        events=st.lists(
            st.tuples(st.integers(0, 2**48), st.booleans()),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_mapi_counters_always_in_range(self, events):
        p = MapIPredictor(num_cores=1)
        for pc, went in events:
            p.predict(0, pc)
            p.update(0, pc, went)
            assert 0 <= p.counter(0, pc) <= MAC_MAX

    @given(st.lists(st.booleans(), min_size=20, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_mapg_converges_on_constant_streams(self, prefix):
        p = MapGPredictor(num_cores=1)
        for went in prefix:
            p.update(0, 0, went)
        for _ in range(4):
            p.update(0, 0, True)
        assert p.predict(0, 0)


class TestTadGeometryProperties:
    @given(
        rows=st.integers(1, 4096),
        set_index=st.integers(0, 10**6),
        ways=st.sampled_from([1, 2]),
    )
    @settings(max_examples=150, deadline=None)
    def test_transfer_alignment_and_size(self, rows, set_index, ways):
        g = AlloyGeometry(rows * ROW_BUFFER_SIZE, ways=ways)
        set_index %= g.num_sets
        t = g.transfer_for_set(set_index)
        # Bus aligned on both edges.
        assert t.bytes_on_bus % STACKED_BUS_BYTES == 0
        assert t.ignored_leading_bytes < STACKED_BUS_BYTES
        assert t.ignored_trailing_bytes < STACKED_BUS_BYTES
        # Streams exactly the TAD(s) plus alignment padding.
        assert t.useful_bytes == TAD_SIZE * ways

    @given(rows=st.integers(1, 4096), line=st.integers(0, 2**40))
    @settings(max_examples=150, deadline=None)
    def test_set_mapping_total(self, rows, line):
        g = AlloyGeometry(rows * ROW_BUFFER_SIZE)
        s = g.set_index(line)
        assert 0 <= s < g.num_sets
        assert 0 <= g.row_of_set(s) < g.num_rows
        assert 0 <= g.slot_of_set(s) < g.tads_per_row

    @given(rows=st.integers(1, 512))
    @settings(max_examples=60, deadline=None)
    def test_every_row_holds_exactly_28_sets(self, rows):
        g = AlloyGeometry(rows * ROW_BUFFER_SIZE)
        from collections import Counter

        per_row = Counter(g.row_of_set(s) for s in range(g.num_sets))
        assert all(count == 28 for count in per_row.values())
        assert len(per_row) == g.num_rows

    @given(rows=st.integers(1, 512), offset=st.integers(0, 2**30))
    @settings(max_examples=60, deadline=None)
    def test_tad_offsets_never_cross_rows(self, rows, offset):
        g = AlloyGeometry(rows * ROW_BUFFER_SIZE)
        s = offset % g.num_sets
        assert g.byte_offset_of_set(s) + TAD_SIZE <= ROW_BUFFER_SIZE
