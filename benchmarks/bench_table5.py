"""Table 5: prediction-scenario accuracy breakdown."""


def test_table5_scenarios(experiment):
    result = experiment("table5")
    accuracy = {row[0]: row[5] for row in result.rows}
    assert accuracy["Perfect"] == 100.0
    assert accuracy["MAP-I"] > accuracy["SAM"]
    assert accuracy["MAP-I"] > accuracy["PAM"]
    pam = result.row_by_key("PAM")
    assert pam[2] > 20.0  # PAM wastes a large share of accesses
