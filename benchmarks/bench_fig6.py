"""Figure 6: Alloy Cache miss-handling options vs the SRAM-Tag design."""


def test_fig6_miss_handling(experiment):
    result = experiment("fig6")
    gmean = result.row_by_key("gmean")
    nopred, missmap, perfect = gmean[1], gmean[2], gmean[3]
    # MissMap's serialization latency makes it worse than no prediction.
    assert missmap < nopred
    assert perfect > nopred
