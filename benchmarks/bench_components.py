"""Microbenchmarks of the simulator's hot components.

These are conventional pytest-benchmark timings (many rounds) of the
per-access building blocks: DRAM device reservations, tag-array lookups,
predictor updates, and trace generation. They track simulator performance,
not paper results.
"""

import numpy as np

from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.replacement import make_policy
from repro.cache.set_assoc import SetAssocCache
from repro.core.predictors import MapIPredictor
from repro.dram.device import DramDevice
from repro.dram.mapping import RowLocation
from repro.dram.timings import STACKED_DRAM
from repro.units import MB
from repro.workloads.spec import get_benchmark
from repro.workloads.patterns import generate_core_trace


def test_device_access_throughput(benchmark):
    device = DramDevice(STACKED_DRAM)
    locs = [RowLocation(i % 4, (i // 4) % 8, i % 64) for i in range(256)]

    def run():
        now = 0.0
        for loc in locs:
            now = device.access(now, loc, 5).done

    benchmark(run)


def test_direct_mapped_lookup_throughput(benchmark):
    cache = DirectMappedCache(14336)
    addresses = np.random.default_rng(1).integers(0, 100_000, 4096).tolist()
    for a in addresses[::4]:
        cache.fill(int(a))

    def run():
        hits = 0
        for a in addresses:
            hits += cache.lookup(int(a))
        return hits

    benchmark(run)


def test_set_assoc_dip_lookup_throughput(benchmark):
    cache = SetAssocCache(512, 29, policy=make_policy("dip"))
    addresses = np.random.default_rng(2).integers(0, 50_000, 2048).tolist()

    def run():
        for a in addresses:
            if not cache.lookup(int(a)):
                cache.fill(int(a))

    benchmark(run)


def test_map_i_predict_update_throughput(benchmark):
    predictor = MapIPredictor(num_cores=8)
    events = [(i % 8, 0x400000 + (i * 37) % 4096, i % 3 == 0) for i in range(2048)]

    def run():
        for core, pc, went in events:
            predictor.predict(core, pc)
            predictor.update(core, pc, went)

    benchmark(run)


def test_trace_generation_throughput(benchmark):
    spec = get_benchmark("mcf_r")

    def run():
        return generate_core_trace(spec.pattern, 2000, seed=1)

    trace = benchmark(run)
    assert trace.num_reads == 2000


def test_end_to_end_small_simulation(benchmark):
    from repro.sim.config import SystemConfig
    from repro.sim.runner import run_benchmark

    config = SystemConfig(cache_size_bytes=256 * MB)

    def run():
        return run_benchmark(
            "alloy-map-i", "sphinx_r", config, reads_per_core=500
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.cycles > 0
