"""Figure 11: the lower-memory-intensity SPEC workloads."""


def test_fig11_other_workloads(experiment):
    result = experiment("fig11")
    gmean = result.row_by_key("gmean")
    lh, sram, alloy = gmean[1], gmean[2], gmean[3]
    # Improvements are small but the ordering holds.
    assert alloy >= sram * 0.98
    assert alloy > lh
