"""Table 6: hit rate, 29-way LH-Cache vs direct-mapped Alloy Cache."""


def test_table6_hit_rates(experiment):
    result = experiment("table6")
    for row in result.rows:
        _, lh, alloy, delta = row[0], row[1], row[2], row[3]
        assert lh >= alloy
        assert delta >= 0
