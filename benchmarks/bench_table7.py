"""Table 7: room for improvement beyond Alloy + MAP-I."""


def test_table7_room_for_improvement(experiment):
    result = experiment("table7")
    impr = {row[0]: row[1] for row in result.rows}
    assert impr["alloy-map-i"] <= impr["alloy-perfect"] * 1.02 + 1.0
    assert impr["ideal-lo"] <= impr["ideal-lo-notag"] + 1.0
