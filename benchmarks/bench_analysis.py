"""Analytic artifacts: Figure 1 (BEHR), Figure 3 (latency), Table 4 (bandwidth)."""


def test_fig1_break_even_hit_rate(experiment):
    result = experiment("fig1")
    assert result.row_by_key("fast")[-1] == "True"
    assert result.row_by_key("slow")[-1] == "False"


def test_fig3_latency_breakdown(experiment):
    result = experiment("fig3")
    for row in result.rows:
        _, _, _, cycles, paper = row
        if paper != "-":
            assert cycles == paper


def test_table4_effective_bandwidth(experiment):
    result = experiment("table4")
    entries = {row[0]: row[3] for row in result.rows}
    assert entries["alloy-cache"] == 6.4
    assert entries["lh-cache"] < 2.0
