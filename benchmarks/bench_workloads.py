"""Table 3: workload characterization (perfect-L3 speedup, MPKI, footprint)."""


def test_table3_characteristics(experiment):
    result = experiment("table3")
    for row in result.rows:
        name, ours, paper, mpki, paper_mpki = row[0], row[1], row[2], row[3], row[4]
        assert ours > 1.0, name
        # Generated MPKI tracks Table 3 closely by construction.
        assert abs(mpki - paper_mpki) / paper_mpki < 0.1, name
    speedups = result.column("perfect_l3_speedup")
    # Preserve the paper's ranking ends: mcf most sensitive, libquantum least.
    assert speedups[0] == max(speedups)
