"""Figure 9: sensitivity to DRAM-cache size (64 MB - 1 GB)."""


def test_fig9_size_sweep(experiment):
    result = experiment("fig9")
    # Every size row: LH < max(others); Alloy between SRAM-Tag and IDEAL-LO.
    for row in result.rows:
        _, lh, sram, alloy, ideal = row
        assert lh < ideal
        assert alloy <= ideal * 1.02
    # Capacity helps the Alloy Cache monotonically (first vs last row).
    assert result.rows[-1][3] >= result.rows[0][3]
