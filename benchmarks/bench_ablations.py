"""Section 6.5 / 6.7 ablations: burst-8 restriction and two-way Alloy."""


def test_burst8_costs_little(experiment):
    result = experiment("burst8")
    base = result.row_by_key("alloy-map-i")[1]
    burst8 = result.row_by_key("alloy-burst8")[1]
    # Paper: 33% vs 35% — burst-8 costs a few points, not the benefit.
    assert burst8 > base - 6.0
    assert burst8 <= base + 1.5


def test_twoway_loses_to_direct_mapped(experiment):
    result = experiment("twoway")
    one = result.row_by_key("alloy-map-i")
    two = result.row_by_key("alloy-2way")
    assert two[2] >= one[2] - 1.0   # hit rate: 2-way >= 1-way (roughly)
    assert two[3] > one[3]          # hit latency: 2-way is slower
