"""Shared helpers for the benchmark suite.

Each ``bench_*`` module regenerates one of the paper's tables or figures
through the experiment registry and reports it. ``pytest-benchmark`` times
the regeneration; the rendered table is attached to the benchmark's
``extra_info`` and printed so a run of::

    pytest benchmarks/ --benchmark-only -s

reproduces every artifact. Set ``REPRO_FULL=1`` for full-length traces
(the numbers recorded in EXPERIMENTS.md); the default is quick mode.

Each experiment's inner (design x benchmark) grid runs through the sweep
executor in ``repro.sim.parallel``; set ``REPRO_JOBS=N`` to fan simulation
cells out over N worker processes while benchmarking. The persistent result
cache is pointed at a throwaway directory per session (unless
``REPRO_CACHE_DIR`` is pinned) so the timer measures simulation, not cache
reads from an earlier run.
"""

import os

import pytest

from repro.experiments.registry import run_experiment

#: Full-length traces when REPRO_FULL=1; quick traces otherwise.
QUICK = os.environ.get("REPRO_FULL", "0") != "1"


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    if "REPRO_CACHE_DIR" in os.environ:
        yield
        return
    cache_dir = tmp_path_factory.mktemp("repro_cache")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    try:
        yield
    finally:
        os.environ.pop("REPRO_CACHE_DIR", None)


def regenerate(benchmark, experiment_id):
    """Run one experiment under the benchmark timer and report its table."""
    result = benchmark.pedantic(
        run_experiment, args=(experiment_id,), kwargs={"quick": QUICK},
        rounds=1, iterations=1,
    )
    rendered = result.render()
    print()
    print(rendered)
    benchmark.extra_info["experiment"] = experiment_id
    benchmark.extra_info["quick_mode"] = QUICK
    benchmark.extra_info["rows"] = len(result.rows)
    return result


@pytest.fixture
def experiment(benchmark):
    """Factory fixture: ``experiment("fig4")`` regenerates Figure 4."""

    def run(experiment_id):
        return regenerate(benchmark, experiment_id)

    return run
