"""Full-reproduction health check: the paper-claim scorecard."""


def test_scorecard(experiment):
    result = experiment("scorecard")
    verdicts = result.column("verdict")
    passed = verdicts.count("PASS")
    # The reproduction promises at least 11 of 12 shape criteria even on
    # short traces (borderline criteria may flip in quick mode).
    assert passed >= 11, result.render()
