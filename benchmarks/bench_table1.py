"""Table 1: de-optimizing the LH-Cache (random replacement, direct-mapped)."""


def test_table1_deoptimization(experiment):
    result = experiment("table1")
    lh = result.row_by_key("lh-cache")
    rand = result.row_by_key("lh-cache-rand")
    one_way = result.row_by_key("lh-cache-1way")
    # De-optimizations reduce hit latency...
    assert rand[3] < lh[3]
    assert one_way[3] < lh[3]
    # ...and reduce hit rate, the paper's counterintuitive trade.
    assert one_way[2] <= lh[2]
