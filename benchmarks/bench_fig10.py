"""Figure 10: average DRAM-cache hit latency per workload."""


def test_fig10_hit_latency(experiment):
    result = experiment("fig10")
    avg = result.row_by_key("average")
    lh, sram, alloy = avg[1], avg[2], avg[3]
    # Paper: 107 / 67 / 43 cycles — Alloy cuts LH latency by ~60%.
    assert alloy < sram < lh
    assert alloy < 0.5 * lh
