"""Section 5.6 energy implications and Section 6.1 storage overheads."""


def test_energy_by_access_model(experiment):
    result = experiment("energy")
    ratios = {row[0]: row[2] for row in result.rows}
    # PAM inflates memory traffic far more than the practical predictors.
    assert ratios["PAM"] > 1.3
    assert ratios["MAP-I"] < ratios["PAM"]
    assert ratios["Perfect"] <= 1.05


def test_storage_overheads(experiment):
    result = experiment("overheads")
    row_256 = result.row_by_key("256MB")
    assert row_256[1] == row_256[2] == "24MB"  # matches the paper exactly
    assert row_256[-1] == "768B"
