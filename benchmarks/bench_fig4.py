"""Figure 4: speedup of SRAM-Tag / LH-Cache / IDEAL-LO over no DRAM cache."""


def test_fig4_performance_potential(experiment):
    result = experiment("fig4")
    gmean = result.row_by_key("gmean")
    lh, sram, ideal = gmean[1], gmean[2], gmean[3]
    # Paper shape: LH-Cache < SRAM-Tag < IDEAL-LO, all above baseline.
    assert 1.0 < lh < sram < ideal
