"""Extension sweeps: PSL sensitivity, MACT sizing, LH replacement ablation."""


def test_psl_sweep(experiment):
    result = experiment("psl-sweep")
    improvements = result.column("improvement_pct")
    latencies = result.column("hit_latency")
    # More serialization latency can only hurt.
    assert improvements[0] >= improvements[-1]
    assert latencies[0] < latencies[-1]


def test_mact_sweep(experiment):
    result = experiment("mact-sweep")
    accuracy = result.column("accuracy_pct")
    # Bigger tables never hurt accuracy.
    assert accuracy[-1] >= accuracy[0] - 0.5


def test_mlp_sweep(experiment):
    result = experiment("mlp-sweep")
    lh = result.column("lh_cache")
    # MLP lifts the latency-dominated LH-Cache the most in relative terms.
    assert lh[-1] >= lh[0] - 0.05


def test_lh_replacement_ablation(experiment):
    result = experiment("lh-replacement")
    by_policy = {row[0]: row for row in result.rows}
    # Random replacement always has the lowest hit latency (no updates).
    assert by_policy["random"][3] <= min(r[3] for r in result.rows)


def test_victim_cache(experiment):
    result = experiment("victim-cache")
    base = result.row_by_key("alloy-map-i")
    v64 = result.row_by_key("alloy-victim64")
    assert v64[2] >= base[2] - 0.2   # hit rate never falls
    assert v64[4] == 64 * 72         # SRAM cost stays tiny


def test_page_policy(experiment):
    result = experiment("page-policy")
    open_row = result.row_by_key("open")
    closed = result.row_by_key("closed")
    assert open_row[3] > closed[3]   # row-buffer hits vanish when closed
    assert open_row[2] <= closed[2]  # and hit latency suffers
