"""Figure 8: Alloy Cache under SAM / PAM / MAP-G / MAP-I / Perfect."""


def test_fig8_predictors(experiment):
    result = experiment("fig8")
    gmean = result.row_by_key("gmean")
    sam, pam, map_g, map_i, perfect = gmean[1:6]
    assert perfect >= max(sam, pam, map_g) * 0.99
    assert map_i > sam
    assert map_i > perfect * 0.9  # close to the oracle
