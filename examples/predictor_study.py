#!/usr/bin/env python
"""Memory-access-predictor study (paper Section 5, Figure 8 / Table 5).

Sweeps the Alloy Cache across access models — serial (SAM), parallel (PAM),
and the dynamic models driven by MAP-G / MAP-I — and breaks down each
predictor's decisions into the paper's four scenarios. Also demonstrates the
predictor objects directly: training a MAP-I table and watching a counter.

Usage::

    python examples/predictor_study.py [benchmark]
"""

import sys

from repro import SystemConfig, make_predictor, speedup

PREDICTOR_DESIGNS = (
    ("alloy-sam", "SAM (always wait for tag check)"),
    ("alloy-pam", "PAM (always probe memory in parallel)"),
    ("alloy-map-g", "MAP-G (3-bit counter per core)"),
    ("alloy-map-i", "MAP-I (256-entry MACT per core)"),
    ("alloy-perfect", "Perfect oracle"),
)


def sweep(benchmark: str) -> None:
    config = SystemConfig()
    print(f"Alloy Cache on {benchmark}, one row per access model:\n")
    print(
        f"{'model':14s} {'speedup':>8s} {'accuracy':>9s} {'wasted':>7s} "
        f"{'serialized':>11s}"
    )
    for design, description in PREDICTOR_DESIGNS:
        s, result = speedup(design, benchmark, config, reads_per_core=4000)
        fractions = result.scenario_fractions()
        wasted = fractions.get("pred_mem_actual_cache", 0.0)
        serialized = fractions.get("pred_cache_actual_mem", 0.0)
        accuracy = result.predictor_accuracy() or 0.0
        print(
            f"{design:14s} {s:7.3f}x {accuracy:8.1%} {wasted:6.1%} "
            f"{serialized:10.1%}   {description}"
        )
    print(
        "\n'wasted' = parallel memory reads for lines that hit in the cache "
        "(bandwidth cost);\n'serialized' = misses that waited for the tag "
        "check (latency cost)."
    )


def demonstrate_map_i() -> None:
    print("\n--- MAP-I up close ---")
    predictor = make_predictor("map-i", num_cores=1)
    load_in_hot_loop = 0x400ABC  # a PC whose data always hits
    load_in_stream = 0x400DEF    # a PC that always misses

    for _ in range(4):
        predictor.update(0, load_in_hot_loop, went_to_memory=False)
        predictor.update(0, load_in_stream, went_to_memory=True)

    print(f"  PC {load_in_hot_loop:#x}: predict memory? "
          f"{predictor.predict(0, load_in_hot_loop)} (trained on hits)")
    print(f"  PC {load_in_stream:#x}: predict memory? "
          f"{predictor.predict(0, load_in_stream)} (trained on misses)")
    per_core_bytes = predictor.storage_bits_per_core() / 8
    print(f"  storage: {per_core_bytes:.0f} bytes/core "
          f"({per_core_bytes * 8:.0f} bytes for the 8-core system)")


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "mcf_r"
    sweep(benchmark)
    demonstrate_map_i()


if __name__ == "__main__":
    main()
