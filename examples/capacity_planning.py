#!/usr/bin/env python
"""Capacity planning with a *custom* workload (paper Figure 9 methodology).

Shows the full public workload API: define your own benchmark as a mixture
of access-pattern components, build a rate-mode workload from it, and sweep
DRAM-cache sizes to find where extra stacked capacity stops paying off.

The example workload is a key-value-store-like service: a hot index, a
Zipf-distributed object heap, and a background scan.

Usage::

    python examples/capacity_planning.py
"""

from repro import SystemConfig, run_design
from repro.sim.runner import run_design as _run
from repro.units import GB, MB, pretty_size
from repro.workloads.patterns import Component, PatternConfig, generate_core_trace
from repro.workloads.trace import Workload

DESIGNS = ("sram-tag", "alloy-map-i")
SIZES = (64 * MB, 128 * MB, 256 * MB, 512 * MB, 1 * GB)

KV_STORE = PatternConfig(
    name="kv-store",
    mpki=18.0,
    components=(
        # Hash index: small and hot, touched on every request.
        Component("hot", 0.40, 16 * MB, pc_pool=6),
        # Object heap: Zipf-popular values over a large region.
        Component("zipf", 0.40, 2 * GB, zipf_alpha=1.2, pc_pool=12),
        # Compaction scan: sequential sweep, row-buffer friendly.
        Component("sequential", 0.20, 512 * MB, run_length=48, pc_pool=3),
    ),
    write_fraction=0.25,
    gap_mean_cycles=55.0,
)


def build_kv_workload(config: SystemConfig, reads_per_core: int = 4000) -> Workload:
    cores = []
    for core_id in range(config.num_cores):
        cores.append(
            generate_core_trace(
                KV_STORE,
                num_reads=reads_per_core,
                seed=100 + core_id,
                capacity_scale=config.capacity_scale,
                base_line=core_id * ((1 << 28) + 2854457),
            )
        )
    return Workload("kv-store", cores)


def main() -> None:
    print("custom kv-store workload: DRAM-cache size sweep\n")
    header = f"{'size':>7s}" + "".join(f"{d:>16s}" for d in DESIGNS) + f"{'hit rate':>10s}"
    print(header)
    print("-" * len(header))

    for size in SIZES:
        config = SystemConfig().with_cache_size(size)
        workload = build_kv_workload(config)
        baseline = run_design("no-cache", workload, config)
        cells = []
        alloy_hit = 0.0
        for design in DESIGNS:
            result = run_design(design, workload, config)
            cells.append(f"{result.speedup_vs(baseline):15.3f}x")
            if design == "alloy-map-i":
                alloy_hit = result.read_hit_rate
        print(f"{pretty_size(size):>7s}" + "".join(cells) + f"{alloy_hit:9.1%}")

    print(
        "\nReading the sweep: capacity helps while the Zipf head still "
        "overflows the\ncache; once the hot set fits, extra stacked DRAM "
        "buys little — size the stack\nat the knee."
    )


if __name__ == "__main__":
    main()
