#!/usr/bin/env python
"""Design shoot-out: every DRAM-cache organization on memory-bound workloads.

Reproduces the paper's central comparison (Figures 4/6) on a selectable set
of workloads: the LH-Cache pays for tag serialization and its MissMap, the
impractical SRAM-Tag design pays only tag serialization, and the Alloy Cache
streams tag-and-data in one burst and wins despite a *lower* hit rate.

Usage::

    python examples/design_comparison.py [benchmark ...]
"""

import sys

from repro import SystemConfig, compare_designs, geometric_mean

DESIGNS = (
    "lh-cache",
    "sram-tag",
    "alloy-nopred",
    "alloy-map-i",
    "ideal-lo",
)


def main() -> None:
    benchmarks = sys.argv[1:] or ["mcf_r", "omnetpp_r", "sphinx_r", "libquantum_r"]
    config = SystemConfig()

    header = f"{'workload':14s}" + "".join(f"{d:>14s}" for d in DESIGNS)
    print(header)
    print("-" * len(header))

    per_design = {d: [] for d in DESIGNS}
    details = {}
    for benchmark in benchmarks:
        row = compare_designs(DESIGNS, benchmark, config, reads_per_core=4000)
        cells = []
        for design in DESIGNS:
            s, result = row[design]
            per_design[design].append(s)
            details[(design, benchmark)] = result
            cells.append(f"{s:13.3f}x")
        print(f"{benchmark:14s}" + "".join(cells))

    print("-" * len(header))
    print(
        f"{'gmean':14s}"
        + "".join(f"{geometric_mean(v):13.3f}x" for v in per_design.values())
    )

    print("\nwhy the Alloy Cache wins (averages across workloads):")
    for design in ("lh-cache", "sram-tag", "alloy-map-i"):
        results = [details[(design, b)] for b in benchmarks]
        hit = sum(r.read_hit_rate for r in results) / len(results)
        lat = sum(r.avg_hit_latency for r in results) / len(results)
        print(f"  {design:12s} hit rate {hit:6.1%}   hit latency {lat:6.1f} cycles")
    print(
        "\nThe Alloy Cache's hit rate is the LOWEST of the three, yet it is "
        "fastest:\nlatency-first beats hit-rate-first for DRAM caches "
        "(the paper's thesis)."
    )


if __name__ == "__main__":
    main()
