#!/usr/bin/env python
"""Quickstart: simulate the Alloy Cache on one workload.

Runs the paper's proposed design (direct-mapped Alloy Cache + MAP-I
predictor) and the no-DRAM-cache baseline on the mcf-like workload, and
prints the headline metrics: speedup, hit rate, and average hit latency.

Usage::

    python examples/quickstart.py [benchmark] [design]
    python examples/quickstart.py omnetpp_r lh-cache
"""

import sys

from repro import DESIGN_NAMES, SystemConfig, speedup


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "mcf_r"
    design = sys.argv[2] if len(sys.argv) > 2 else "alloy-map-i"
    if design not in DESIGN_NAMES:
        raise SystemExit(f"unknown design {design!r}; choose from {DESIGN_NAMES}")

    config = SystemConfig()  # paper Table 2: 8 cores, 256 MB stacked cache
    print(f"simulating {design} on {benchmark} "
          f"({config.num_cores} cores, 256 MB nominal cache)...")

    s, result = speedup(design, benchmark, config, reads_per_core=4000)

    print(f"\n  speedup over no-DRAM-cache baseline : {s:.3f}x")
    print(f"  DRAM-cache read hit rate            : {result.read_hit_rate:.1%}")
    print(f"  average hit latency                 : {result.avg_hit_latency:.1f} cycles")
    print(f"  average read latency                : {result.avg_read_latency:.1f} cycles")
    print(f"  off-chip memory reads               : {result.memory_reads}")
    if result.predictor_accuracy() is not None:
        print(f"  memory-access-predictor accuracy    : {result.predictor_accuracy():.1%}")
    print(f"  stacked-DRAM row-buffer hit rate    : {result.stacked_row_hit_rate:.1%}")


if __name__ == "__main__":
    main()
