#!/usr/bin/env python
"""Bring-your-own-trace flow: CSV import, L3 filtering, simulation, export.

Real studies start from captured traces, not synthetic generators. This
example shows the whole pipeline:

1. write a raw (pre-L3) trace as interchange CSV — in practice this comes
   from a Pin/DynamoRIO tool;
2. import it and filter it through the functional L3 (8 MB, 16-way shared),
   producing the post-L3 stream the DRAM cache actually sees;
3. simulate two DRAM-cache designs on the filtered stream;
4. save the filtered workload as .npz for fast reuse.

Usage::

    python examples/bring_your_own_trace.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import SystemConfig
from repro.sim.l3_filter import L3Filter
from repro.sim.runner import run_design
from repro.workloads.tracefile import import_csv, save_workload


def synthesize_raw_csv(path: Path, cores: int = 4, requests: int = 3000) -> None:
    """Stand-in for a real capture: loops over a working set plus a scan."""
    rng = np.random.default_rng(7)
    with open(path, "w") as handle:
        handle.write("core,gap,address,write,pc\n")
        for core in range(cores):
            base = core * 10_000_000
            scan_cursor = 0
            for i in range(requests):
                r = rng.random()
                if r < 0.45:  # L3-resident hot loop (~80 lines)
                    address = base + int(rng.integers(80))
                    pc = 0x401000
                elif r < 0.80:  # warm set: misses L3, fits the DRAM cache
                    address = base + 10_000 + int(rng.integers(6000))
                    pc = 0x401abc
                else:  # background scan: misses everything
                    scan_cursor += 1
                    address = base + 1_000_000 + scan_cursor
                    pc = 0x402000
                write = int(rng.random() < 0.15)
                handle.write(f"{core},12.0,{address},{write},{pc}\n")


def main() -> None:
    config = SystemConfig(num_cores=4)
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "capture.csv"
        synthesize_raw_csv(csv_path, cores=config.num_cores)

        raw = import_csv(csv_path, name="captured-app")
        print(f"imported {raw.total_requests} raw requests "
              f"({raw.footprint_bytes() / 1024:.0f} KB footprint)")

        l3 = L3Filter(capacity_scale=config.capacity_scale)
        filtered = l3.filter_workload(raw)
        print(f"L3 filter: {l3.stats.hit_rate:.1%} hit rate, "
              f"{l3.stats.demand_misses} demand misses, "
              f"{l3.stats.writebacks} writebacks reach the DRAM cache")

        baseline = run_design("no-cache", filtered, config)
        for design in ("sram-tag", "alloy-map-i"):
            result = run_design(design, filtered, config)
            print(f"  {design:12s}: {result.speedup_vs(baseline):.3f}x over "
                  f"no-cache, hit rate {result.read_hit_rate:.1%}")

        npz_path = Path(tmp) / "filtered.npz"
        save_workload(filtered, npz_path)
        print(f"filtered workload saved to {npz_path.name} "
              f"({npz_path.stat().st_size / 1024:.0f} KB)")


if __name__ == "__main__":
    main()
